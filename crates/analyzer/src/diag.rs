//! Diagnostics infrastructure: the stable rule registry, inline
//! `spc-allow` suppressions, the committed findings baseline, and the
//! machine-readable output formats (JSON and SARIF).
//!
//! Rule IDs are append-only: a rule keeps its `SPCnn` for life so
//! baselines, suppressions and external tooling never re-key. Names may
//! be referenced in suppressions interchangeably with IDs.

use crate::scan::Line;
use crate::Finding;

/// One registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier (`SPC07`). Never reused, never renumbered.
    pub id: &'static str,
    /// Human-readable name (`seqlock-protocol`), used in diagnostics and
    /// accepted in `spc-allow(...)`.
    pub name: &'static str,
    /// One-line description for `--list-rules` and SARIF metadata.
    pub desc: &'static str,
}

/// The registry. Ordering is presentation order only; IDs are stable.
pub const RULES: &[Rule] = &[
    Rule {
        id: "SPC01",
        name: "safety-comment",
        desc: "every `unsafe` carries an adjacent `// SAFETY:` justification \
               (or `# Safety` doc section for declarations)",
    },
    Rule {
        id: "SPC02",
        name: "intrinsic-gating",
        desc: "arch intrinsics behind `cfg(target_arch = \"x86_64\")` with a \
               portable fallback in the same module",
    },
    Rule {
        id: "SPC03",
        name: "lock-discipline",
        desc: "shard.rs lock order: shards first (index order or exactly \
               one), wildcard lane last, no nested shard locks",
    },
    Rule {
        id: "SPC04",
        name: "atomic-ordering",
        desc: "every atomic op in protocol scope satisfies the per-field \
               ordering requirement table (SeqCst protocol words, AcqRel \
               flags, rationale'd Relaxed telemetry)",
    },
    Rule {
        id: "SPC05",
        name: "sink-routing",
        desc: "list/*.rs functions taking an AccessSink charge or forward it \
               when touching entry storage",
    },
    Rule {
        id: "SPC06",
        name: "hot-path-determinism",
        desc: "no clocks or ambient randomness in hot-path modules",
    },
    Rule {
        id: "SPC07",
        name: "seqlock-protocol",
        desc: "seqlock writer protocol: version-odd (begin) before row \
               mutations, one seq stamp before mutations, version-even (end) \
               on every path out",
    },
    Rule {
        id: "SPC08",
        name: "spsc-protocol",
        desc: "SPSC ring publish/consume order: slot words before tail \
               advance, slot reads before head advance, plain stores only \
               (RMW on the indices is a multi-producer idiom), one producer \
               per ring",
    },
    Rule {
        id: "SPC09",
        name: "lock-order-graph",
        desc: "the workspace acquired-while-held graph is acyclic",
    },
    Rule {
        id: "SPC10",
        name: "hot-path-alloc",
        desc: "no allocation on the measured hot path (Box::new, vec!/format!, \
               push without capacity, to_vec/to_string)",
    },
    Rule {
        id: "SPC11",
        name: "hot-path-panic",
        desc: "no panic!/unwrap/expect on the measured hot path outside \
               debug assertions and lock-poisoning propagation",
    },
    Rule {
        id: "SPC12",
        name: "inline-dispatch",
        desc: "SIMD dispatch wrappers taking a `kind: ScanKind` carry an \
               `#[inline]` attribute so kernel selection stays branch-only",
    },
    Rule {
        id: "SPC13",
        name: "scope-coverage",
        desc: "analyzer scope tables match the tree: every scoped file \
               exists, every module carries a `//! spc-scope:` marker, every \
               atomics-using core module is under an ordering rule",
    },
    Rule {
        id: "SPC14",
        name: "suppression-hygiene",
        desc: "every `spc-allow` names a known rule, carries a rationale, \
               and suppresses at least one finding",
    },
];

/// Resolves a rule name to its stable ID. Panics on unknown names —
/// rule constructors only pass registry names, so this is a
/// programming-error guard, not an input validation.
pub fn rule_id(name: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.id)
        .unwrap_or_else(|| panic!("unregistered rule name: {name}"))
}

/// Resolves an ID or name (as written in `spc-allow(...)`) to the rule.
pub fn lookup_rule(key: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == key || r.name == key)
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// One `// spc-allow(RULE): rationale` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The key as written (ID or name); may be unknown (hygiene finding).
    pub key: String,
    /// Rationale text after the colon.
    pub rationale: String,
    /// Line range `(first, last)` of findings this suppression covers.
    pub covers: (usize, usize),
    /// Whether the comment had code on the same line (inline form).
    pub inline: bool,
}

/// Parses every suppression in `lines`. An *inline* suppression
/// (trailing a code line) covers exactly its own line. A *standalone*
/// suppression (comment-only line) covers the next statement: from the
/// first following code line through the line that terminates it
/// (`;`/`{`/`}`), bounded at 8 lines so a forgotten comment cannot
/// blanket a file.
pub fn parse_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        // The marker must be the first thing in the comment (after the
        // `//`/`/*` opener) — prose that merely *mentions* the syntax,
        // like this crate's own docs, is not a suppression.
        let stripped = l
            .comment
            .trim_start()
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        let Some(rest) = stripped.strip_prefix("spc-allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let key = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let rationale = after.strip_prefix(':').unwrap_or("").trim().to_string();
        let inline = !l.code.trim().is_empty();
        let covers = if inline {
            (i + 1, i + 1)
        } else {
            // Standalone: cover the next statement.
            let mut first = None;
            let mut last = i + 1;
            for (j, nl) in lines.iter().enumerate().skip(i + 1).take(8) {
                let code = nl.code.trim();
                if code.is_empty() {
                    if first.is_none() && nl.raw.trim().is_empty() {
                        break; // blank line ends the window before any code
                    }
                    continue;
                }
                if first.is_none() {
                    first = Some(j + 1);
                }
                last = j + 1;
                if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
                    break;
                }
            }
            match first {
                Some(f) => (f, last),
                None => (i + 1, i + 1),
            }
        };
        out.push(Suppression {
            line: i + 1,
            key,
            rationale,
            covers,
            inline,
        });
    }
    out
}

/// Applies `sups` to `findings`: covered findings are removed, the
/// suppressions that removed them are marked used via the returned
/// per-suppression flags. [`rule_id`] `SPC14` findings are never
/// suppressible — hygiene findings about suppressions must not be
/// silenceable by more suppressions.
pub fn apply_suppressions(
    findings: Vec<Finding>,
    sups: &[Suppression],
) -> (Vec<Finding>, Vec<bool>) {
    let mut used = vec![false; sups.len()];
    let kept = findings
        .into_iter()
        .filter(|f| {
            if f.rule_id == "SPC14" {
                return true;
            }
            for (si, s) in sups.iter().enumerate() {
                let matches_rule =
                    lookup_rule(&s.key).is_some_and(|r| r.id == f.rule_id || r.name == f.rule);
                if matches_rule && f.line >= s.covers.0 && f.line <= s.covers.1 {
                    used[si] = true;
                    return false;
                }
            }
            true
        })
        .collect();
    (kept, used)
}

/// Hygiene findings for a file's suppressions: unknown rule key, empty
/// rationale, and (given the usage flags from [`apply_suppressions`])
/// suppressions that silenced nothing.
pub fn suppression_hygiene(path: &str, sups: &[Suppression], used: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (si, s) in sups.iter().enumerate() {
        match lookup_rule(&s.key) {
            None => {
                out.push(Finding::new(
                    path,
                    s.line,
                    "suppression-hygiene",
                    format!("spc-allow names unknown rule `{}`", s.key),
                ));
                continue;
            }
            Some(r) if r.id == "SPC14" => {
                out.push(Finding::new(
                    path,
                    s.line,
                    "suppression-hygiene",
                    "suppression-hygiene findings cannot be suppressed",
                ));
                continue;
            }
            Some(_) => {}
        }
        if s.rationale.is_empty() {
            out.push(Finding::new(
                path,
                s.line,
                "suppression-hygiene",
                format!("spc-allow({}) has no rationale after the colon", s.key),
            ));
            continue;
        }
        if !used[si] {
            out.push(Finding::new(
                path,
                s.line,
                "suppression-hygiene",
                format!(
                    "unused suppression: spc-allow({}) matched no finding on \
                     lines {}-{}; delete it or fix its coverage",
                    s.key, s.covers.0, s.covers.1
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// A baseline entry: one accepted pre-existing finding, matched by
/// `(file, rule_id, message)` — line numbers churn with unrelated edits,
/// so they are recorded for humans but ignored for matching.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    pub file: String,
    pub rule_id: String,
    pub message: String,
}

/// Parses the committed baseline JSON (the exact shape
/// [`write_baseline`] emits). Returns `Err` with a human-readable
/// description on malformed input.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    if !text.contains("\"spc-analyzer-baseline/1\"") {
        return Err("baseline missing schema marker `spc-analyzer-baseline/1`".into());
    }
    let mut out = Vec::new();
    let Some(arr) = text.find("\"findings\"") else {
        return Err("baseline missing `findings` array".into());
    };
    let mut rest = &text[arr..];
    while let Some(obj_start) = rest.find('{') {
        let Some(obj_end) = rest[obj_start..].find('}') else {
            break;
        };
        let obj = &rest[obj_start..obj_start + obj_end];
        let file = json_str_field(obj, "file");
        let rule_id = json_str_field(obj, "rule_id");
        let message = json_str_field(obj, "message");
        if let (Some(file), Some(rule_id), Some(message)) = (file, rule_id, message) {
            out.push(BaselineEntry {
                file,
                rule_id,
                message,
            });
        }
        rest = &rest[obj_start + obj_end + 1..];
    }
    Ok(out)
}

/// Extracts `"key": "value"` from a flat JSON object body, unescaping.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let kpos = obj.find(&pat)?;
    let rest = obj[kpos + pat.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(ch) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(ch);
                    }
                }
                other => out.push(other),
            },
            _ => out.push(c),
        }
    }
    None
}

/// Subtracts the baseline from `findings` as a multiset keyed on
/// `(file, rule_id, message)`: each baseline entry absorbs at most one
/// finding. Returns the new findings (not in the baseline).
pub fn diff_baseline(findings: Vec<Finding>, baseline: &[BaselineEntry]) -> Vec<Finding> {
    let mut budget: Vec<(&BaselineEntry, usize)> = Vec::new();
    for b in baseline {
        match budget.iter_mut().find(|(e, _)| *e == b) {
            Some((_, n)) => *n += 1,
            None => budget.push((b, 1)),
        }
    }
    findings
        .into_iter()
        .filter(|f| {
            for (b, n) in budget.iter_mut() {
                if *n > 0 && b.file == f.file && b.rule_id == f.rule_id && b.message == f.message {
                    *n -= 1;
                    return false;
                }
            }
            true
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Writers: JSON escaping, findings JSON, baseline JSON, SARIF
// ---------------------------------------------------------------------------

/// JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "    {{\"file\": \"{}\", \"line\": {}, \"rule_id\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"}}",
        json_escape(&f.file),
        f.line,
        f.rule_id,
        f.rule,
        json_escape(&f.message)
    )
}

/// Renders findings as the `spc-analyzer/1` JSON report.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"schema\": \"spc-analyzer/1\",\n  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"name\": \"{}\", \"description\": \"{}\"}}{}\n",
            r.id,
            r.name,
            json_escape(r.desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&finding_json(f));
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as the committed baseline format.
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"spc-analyzer-baseline/1\",\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&finding_json(f));
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as minimal SARIF 2.1.0 — one run, one driver, the
/// rule registry as `rules`, one `result` per finding.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"spc-analyzer\",\n          \
         \"informationUri\": \"https://example.invalid/spc-analyzer\",\n          \"rules\": [\n",
    );
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": \
             {{\"text\": \"{}\"}}}}{}\n",
            r.id,
            r.name,
            json_escape(r.desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            f.rule_id,
            json_escape(&format!("[{}] {}", f.rule, f.message)),
            json_escape(&f.file),
            f.line.max(1),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn registry_ids_are_unique_and_sequential() {
        for (i, r) in RULES.iter().enumerate() {
            assert_eq!(r.id, format!("SPC{:02}", i + 1));
            assert!(RULES.iter().filter(|o| o.name == r.name).count() == 1);
        }
    }

    #[test]
    fn inline_and_standalone_suppressions_cover_correctly() {
        let src = "let x = p.unwrap(); // spc-allow(SPC11): poisoned is fatal\n\
                   // spc-allow(hot-path-alloc): grow path, amortized\n\
                   let v =\n    vec![0; n];\n";
        let sups = parse_suppressions(&scan(src));
        assert_eq!(sups.len(), 2);
        assert!(sups[0].inline);
        assert_eq!(sups[0].covers, (1, 1));
        assert!(!sups[1].inline);
        assert_eq!(sups[1].covers, (3, 4), "covers the whole statement");
        assert_eq!(sups[1].rationale, "grow path, amortized");
    }

    #[test]
    fn apply_marks_usage_and_never_suppresses_hygiene() {
        let src = "x(); // spc-allow(SPC11): fine\ny(); // spc-allow(SPC14): nope\n";
        let sups = parse_suppressions(&scan(src));
        let findings = vec![
            Finding::new("f.rs", 1, "hot-path-panic", "boom"),
            Finding::new("f.rs", 2, "suppression-hygiene", "meta"),
        ];
        let (kept, used) = apply_suppressions(findings, &sups);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "suppression-hygiene");
        assert_eq!(used, vec![true, false]);
    }

    #[test]
    fn baseline_roundtrip_and_multiset_diff() {
        let f1 = Finding::new("a.rs", 3, "hot-path-panic", "msg \"quoted\"");
        let f2 = Finding::new("a.rs", 9, "hot-path-panic", "msg \"quoted\"");
        let f3 = Finding::new("b.rs", 1, "hot-path-alloc", "other");
        let text = write_baseline(std::slice::from_ref(&f1));
        let base = parse_baseline(&text).unwrap();
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].message, "msg \"quoted\"");
        // One baseline entry absorbs exactly one of the two identical
        // findings; the second and the unrelated one survive.
        let left = diff_baseline(vec![f1, f2, f3], &base);
        assert_eq!(left.len(), 2);
    }

    #[test]
    fn json_and_sarif_contain_schema_and_locations() {
        let f = Finding::new("a.rs", 3, "seqlock-protocol", "m");
        let j = to_json(std::slice::from_ref(&f));
        assert!(j.contains("\"spc-analyzer/1\""));
        assert!(j.contains("\"SPC07\""));
        let s = to_sarif(&[f]);
        assert!(s.contains("\"2.1.0\""));
        assert!(s.contains("\"startLine\": 3"));
    }
}
