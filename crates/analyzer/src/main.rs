//! CLI gate: `cargo run -p spc-analyzer -- --check [--root PATH]`.
//!
//! Exits 0 when the tree is clean, 1 with `file:line: [rule] message`
//! diagnostics otherwise. CI runs this in the `analysis` job; run it
//! locally from the workspace root before pushing hot-path changes.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: spc-analyzer --check [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if !check {
        eprintln!("usage: spc-analyzer --check [--root PATH]");
        return ExitCode::from(2);
    }
    // When invoked through `cargo run -p spc-analyzer`, the working
    // directory is the workspace root; honor an explicit --root otherwise.
    match spc_analyzer::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("spc-analyzer: clean (0 findings)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("spc-analyzer: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("spc-analyzer: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}
