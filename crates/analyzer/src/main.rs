//! CLI gate:
//!
//! ```text
//! spc-analyzer --check [--root PATH] [--format text|json|sarif]
//!              [--baseline FILE] [--write-baseline FILE] [--dot FILE]
//! spc-analyzer --list-rules
//! ```
//!
//! Exits 0 when the tree is clean (after baseline subtraction, if
//! `--baseline` was given), 1 with `file:line: [SPCnn/rule] message`
//! diagnostics otherwise, 2 on usage or I/O errors. CI runs
//! `--check --baseline analyzer-baseline.json --format sarif --dot
//! lock-order.dot`; run the plain `--check` locally before pushing
//! hot-path changes.

use std::path::PathBuf;
use std::process::ExitCode;

use spc_analyzer::diag;

const USAGE: &str = "usage: spc-analyzer --check [--root PATH] [--format text|json|sarif] \
                     [--baseline FILE] [--write-baseline FILE] [--dot FILE] | --list-rules";

fn main() -> ExitCode {
    let mut check = false;
    let mut list_rules = false;
    let mut root = PathBuf::from(".");
    let mut format = String::from("text");
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut dot: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| match args.next() {
            Some(p) => Ok(PathBuf::from(p)),
            None => {
                eprintln!("{flag} requires a path");
                Err(())
            }
        };
        match a.as_str() {
            "--check" => check = true,
            "--list-rules" => list_rules = true,
            "--root" => match path_arg(&mut args, "--root") {
                Ok(p) => root = p,
                Err(()) => return ExitCode::from(2),
            },
            "--baseline" => match path_arg(&mut args, "--baseline") {
                Ok(p) => baseline = Some(p),
                Err(()) => return ExitCode::from(2),
            },
            "--write-baseline" => match path_arg(&mut args, "--write-baseline") {
                Ok(p) => write_baseline = Some(p),
                Err(()) => return ExitCode::from(2),
            },
            "--dot" => match path_arg(&mut args, "--dot") {
                Ok(p) => dot = Some(p),
                Err(()) => return ExitCode::from(2),
            },
            "--format" => match args.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "sarif") => format = f,
                Some(f) => {
                    eprintln!("unknown format `{f}` (expected text, json or sarif)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--format requires text|json|sarif");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if list_rules {
        println!("{:<6} {:<22} description", "id", "name");
        for r in diag::RULES {
            println!("{:<6} {:<22} {}", r.id, r.name, r.desc);
        }
        return ExitCode::SUCCESS;
    }
    if !check {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    // When invoked through `cargo run -p spc-analyzer`, the working
    // directory is the workspace root; honor an explicit --root otherwise.
    let result = match spc_analyzer::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spc-analyzer: i/o error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(p) = &dot {
        if let Err(e) = std::fs::write(p, &result.dot) {
            eprintln!("spc-analyzer: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &write_baseline {
        let text = diag::write_baseline(&result.findings);
        if let Err(e) = std::fs::write(p, text) {
            eprintln!("spc-analyzer: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
        println!(
            "spc-analyzer: wrote baseline with {} finding(s) to {}",
            result.findings.len(),
            p.display()
        );
        return ExitCode::SUCCESS;
    }
    let findings = match &baseline {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("spc-analyzer: reading {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            let entries = match diag::parse_baseline(&text) {
                Ok(es) => es,
                Err(e) => {
                    eprintln!("spc-analyzer: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            diag::diff_baseline(result.findings, &entries)
        }
        None => result.findings,
    };
    match format.as_str() {
        "json" => print!("{}", diag::to_json(&findings)),
        "sarif" => print!("{}", diag::to_sarif(&findings)),
        _ => {
            for f in &findings {
                eprintln!("{f}");
            }
            if findings.is_empty() {
                println!("spc-analyzer: clean (0 findings)");
            } else {
                eprintln!("spc-analyzer: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
