//! Atomic-ordering discipline: every atomic operation in protocol scope
//! must satisfy the per-field requirement table below.
//!
//! Three requirement levels:
//!
//! * [`Req::SeqCst`] — protocol words. The wildcard-lane store-buffering
//!   pair, the seqlock version and row-publication fields, and the SPSC
//!   ring indices are all correct *only* in the single SeqCst total
//!   order; any weaker ordering is an error.
//! * [`Req::AcqRel`] — handshake flags (heater pause/shutdown/pass
//!   counter): release on publish, acquire on observe; `Relaxed` is an
//!   error, `SeqCst` is accepted (strictly stronger).
//! * [`Req::Relaxed`] — rationale'd telemetry. Any ordering is accepted;
//!   the entry documents *why* relaxation is sound.
//!
//! An atomic op on a receiver with no entry is an error when it uses
//! `Relaxed` (new telemetry must be argued into the table), and an op
//! whose receiver the scanner cannot attribute is an error outright.
//! Test-module code is exempt — test counters synchronize by `join`.

use crate::items::FnItem;
use crate::scopes::file_name;
use crate::token::{matching_close, receiver_chain, Tok, TokKind};
use crate::Finding;

/// Requirement level for one atomic field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Req {
    /// Must use `SeqCst` everywhere.
    SeqCst,
    /// Must use `Acquire`/`Release`/`AcqRel` (or stronger); `Relaxed`
    /// forbidden.
    AcqRel,
    /// `Relaxed` permitted — the rationale says why.
    Relaxed,
}

/// One row of the requirement table.
#[derive(Debug, Clone, Copy)]
pub struct AtomicSpec {
    /// File name (last path component) the entry applies to.
    pub file: &'static str,
    /// The atomic field/binding as written before `.load(`/`.store(`/….
    pub receiver: &'static str,
    /// Required strength.
    pub req: Req,
    /// Why. Must be non-empty (pinned by tests).
    pub rationale: &'static str,
}

/// The requirement table. Grouped by file; every atomics-bearing module
/// under `crates/core/src` must appear here ([`crate::scopes::self_check`]
/// enforces the inverse direction).
pub const SPECS: &[AtomicSpec] = &[
    // -- shard.rs: wildcard-lane protocol + lock/snapshot telemetry -----
    AtomicSpec {
        file: "shard.rs",
        receiver: "seq",
        req: Req::SeqCst,
        rationale: "global linearization stamp; the wildcard fast path's soundness \
                    argument orders seq stamps against umq_counts/wild_len in the \
                    single SeqCst total order",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "wild_len",
        req: Req::SeqCst,
        rationale: "store-buffering pair with umq_counts between posters and \
                    arrivals; Relaxed or even AcqRel admits the r1=r2=0 outcome \
                    that loses a wildcard crossing",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "umq_counts",
        req: Req::SeqCst,
        rationale: "store-buffering pair with wild_len; see wild_len",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "locked_reads",
        req: Req::SeqCst,
        rationale: "gates the lock-free pre-scan park decision against writer \
                    activity; must sit in the same total order as seq",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "acquisitions",
        req: Req::Relaxed,
        rationale: "lock-acquisition tally surfaced in LockStats; read only in \
                    snapshot reporting, never ordered against queue state",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "contended",
        req: Req::Relaxed,
        rationale: "contention tally surfaced in LockStats; monotonic counter \
                    read only in snapshot reporting",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "wild_crossings",
        req: Req::Relaxed,
        rationale: "counts arrivals that crossed into the wildcard lane, for \
                    ConcurrencyStats; never consulted by matching decisions",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "snap_retries",
        req: Req::Relaxed,
        rationale: "counts seqlock read retries for SnapReadStats; the retry \
                    decision itself reads the SeqCst version word, this only \
                    tallies how often it fired",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "snap_fallbacks",
        req: Req::Relaxed,
        rationale: "counts lock-free probes that gave up and took the locked \
                    slow path; telemetry for SnapReadStats, never consulted by \
                    matching",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "prescan_parks",
        req: Req::Relaxed,
        rationale: "counts wildcard pre-scans that proved no match and parked \
                    without locking shards; SnapReadStats telemetry only",
    },
    AtomicSpec {
        file: "shard.rs",
        receiver: "prescan_fallbacks",
        req: Req::Relaxed,
        rationale: "counts wildcard pre-scans that fell back to the locked scan; \
                    SnapReadStats telemetry only",
    },
    // -- seqsnap.rs: seqlock version word + published row cells ---------
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "v",
        req: Req::SeqCst,
        rationale: "the seqlock version word; readers decide snapshot consistency \
                    from its parity and stability",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "rows_len",
        req: Req::SeqCst,
        rationale: "row-count publication field lock-free probes iterate by",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "live_rows",
        req: Req::SeqCst,
        rationale: "live-row count read by the wildcard pre-scan's emptiness check",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "overflow",
        req: Req::SeqCst,
        rationale: "overflow flag that invalidates a published snapshot; readers \
                    must observe it no later than the rows it covers",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "seq",
        req: Req::SeqCst,
        rationale: "published row cell (stamp word) read by lock-free snapshots \
                    under the version-word protocol",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "key",
        req: Req::SeqCst,
        rationale: "published row cell (match key); see seq",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "val",
        req: Req::SeqCst,
        rationale: "published row cell (payload); see seq",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "live",
        req: Req::SeqCst,
        rationale: "published row liveness cell; see seq",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "prq_len",
        req: Req::SeqCst,
        rationale: "mirrored queue depth consumed by lock-free queue_lens; paired \
                    with the writer's version-word protocol",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "umq_len",
        req: Req::SeqCst,
        rationale: "mirrored queue depth; see prq_len",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "count",
        req: Req::Relaxed,
        rationale: "MirrorDepth sample tally; readers take a whole-lane seqlock \
                    snapshot, so torn counter reads cannot escape",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "sum",
        req: Req::Relaxed,
        rationale: "MirrorDepth running sum for mean traversal depth; reporting \
                    only, validated against the locked engine under \
                    debug_invariants",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "max",
        req: Req::Relaxed,
        rationale: "MirrorDepth running max; monotone telemetry read only in \
                    stats snapshots",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "min",
        req: Req::Relaxed,
        rationale: "MirrorDepth running min; monotone telemetry read only in \
                    stats snapshots",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "prq_hits",
        req: Req::Relaxed,
        rationale: "MirrorStats match tally mirrored for lock-free stats(); \
                    updated under the shard lock, read without ordering \
                    guarantees by design",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "umq_hits",
        req: Req::Relaxed,
        rationale: "MirrorStats match tally mirrored for lock-free stats(); see \
                    prq_hits",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "prq_appends",
        req: Req::Relaxed,
        rationale: "MirrorStats append tally mirrored for lock-free stats(); see \
                    prq_hits",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "umq_appends",
        req: Req::Relaxed,
        rationale: "MirrorStats append tally mirrored for lock-free stats(); see \
                    prq_hits",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "max_prq",
        req: Req::Relaxed,
        rationale: "MirrorStats occupancy high-water mark; fetch_max telemetry \
                    read only in stats snapshots",
    },
    AtomicSpec {
        file: "seqsnap.rs",
        receiver: "max_umq",
        req: Req::Relaxed,
        rationale: "MirrorStats occupancy high-water mark; see max_prq",
    },
    // -- ingest.rs: SPSC ring indices + slot words ----------------------
    AtomicSpec {
        file: "ingest.rs",
        receiver: "head",
        req: Req::SeqCst,
        rationale: "SPSC consumer index; the producer's reuse of a slot hangs off \
                    observing the consumer's head advance after its slot reads",
    },
    AtomicSpec {
        file: "ingest.rs",
        receiver: "tail",
        req: Req::SeqCst,
        rationale: "SPSC producer index; the consumer's visibility of slot \
                    contents hangs off the tail advance ordering after the slot \
                    stores",
    },
    AtomicSpec {
        file: "ingest.rs",
        receiver: "w0",
        req: Req::SeqCst,
        rationale: "ring slot word published before the tail advance; Relaxed \
                    slot stores may be observed torn by the consumer",
    },
    AtomicSpec {
        file: "ingest.rs",
        receiver: "w1",
        req: Req::SeqCst,
        rationale: "ring slot word; see w0",
    },
    AtomicSpec {
        file: "ingest.rs",
        receiver: "w2",
        req: Req::SeqCst,
        rationale: "ring slot word; see w0",
    },
    AtomicSpec {
        file: "ingest.rs",
        receiver: "enqueued",
        req: Req::Relaxed,
        rationale: "ring telemetry: lifetime push tally read in accounting checks \
                    after producer joins (the join orders it); FIFO visibility \
                    rides on the SeqCst head/tail indices",
    },
    AtomicSpec {
        file: "ingest.rs",
        receiver: "drained",
        req: Req::Relaxed,
        rationale: "ring telemetry: lifetime pop tally; see enqueued",
    },
    // -- concurrent.rs: mutex-protected engine --------------------------
    AtomicSpec {
        file: "concurrent.rs",
        receiver: "seq",
        req: Req::Relaxed,
        rationale: "operation stamps are taken while holding the engine mutex, \
                    which already totally orders them; the atomic only needs \
                    atomicity, not ordering",
    },
    AtomicSpec {
        file: "concurrent.rs",
        receiver: "acquisitions",
        req: Req::Relaxed,
        rationale: "lock tally surfaced in LockStats; reporting only",
    },
    AtomicSpec {
        file: "concurrent.rs",
        receiver: "contended",
        req: Req::Relaxed,
        rationale: "contention tally surfaced in LockStats; reporting only",
    },
    AtomicSpec {
        file: "concurrent.rs",
        receiver: "max_prq",
        req: Req::Relaxed,
        rationale: "occupancy high-water mark sampled under the engine mutex; \
                    reporting only",
    },
    AtomicSpec {
        file: "concurrent.rs",
        receiver: "max_umq",
        req: Req::Relaxed,
        rationale: "occupancy high-water mark; see max_prq",
    },
    // -- heater.rs: background cache-heater handshake --------------------
    AtomicSpec {
        file: "heater.rs",
        receiver: "paused",
        req: Req::AcqRel,
        rationale: "pause/resume handshake with the heater thread: the loop must \
                    observe region state published before the resume",
    },
    AtomicSpec {
        file: "heater.rs",
        receiver: "shutdown",
        req: Req::AcqRel,
        rationale: "shutdown flag joined by the heater thread; release/acquire \
                    pairs the final state publication with the join",
    },
    AtomicSpec {
        file: "heater.rs",
        receiver: "passes",
        req: Req::AcqRel,
        rationale: "pass counter used as a progress handshake by wait_passes: a \
                    pass publication must release the touches it covers",
    },
    AtomicSpec {
        file: "heater.rs",
        receiver: "words",
        req: Req::Relaxed,
        rationale: "the heat-pattern scribble words themselves: raw cache traffic \
                    with no synchronization role; values are never interpreted",
    },
    AtomicSpec {
        file: "heater.rs",
        receiver: "active_regions",
        req: Req::Relaxed,
        rationale: "registered-region gauge for HeaterStats; the slots Mutex \
                    orders the actual region table",
    },
    AtomicSpec {
        file: "heater.rs",
        receiver: "period_ns",
        req: Req::Relaxed,
        rationale: "heater pacing knob read once per pass; a stale period for one \
                    pass is harmless and the value is never a happens-before edge",
    },
    AtomicSpec {
        file: "heater.rs",
        receiver: "touches",
        req: Req::Relaxed,
        rationale: "lines-touched tally for HeaterStats; readers wanting a \
                    consistent view pair it with the AcqRel passes counter",
    },
    // -- envcfg.rs / addr.rs ---------------------------------------------
    AtomicSpec {
        file: "envcfg.rs",
        receiver: "state",
        req: Req::Relaxed,
        rationale: "env-var cache with a monotonic UNSET→value transition; racing \
                    initializers compute the same value from the same \
                    environment, so any interleaving converges",
    },
    AtomicSpec {
        file: "addr.rs",
        receiver: "NEXT",
        req: Req::Relaxed,
        rationale: "unique-id allocator: only atomicity of fetch_add matters, \
                    ids carry no ordering meaning",
    },
];

/// The distinct files the table covers — the atomic-ordering scope.
pub fn scoped_files() -> Vec<&'static str> {
    let mut files: Vec<&'static str> = SPECS.iter().map(|s| s.file).collect();
    files.dedup();
    files.sort_unstable();
    files.dedup();
    files
}

/// Looks up the spec for `(file, receiver)`.
pub fn lookup(file: &str, receiver: &str) -> Option<&'static AtomicSpec> {
    SPECS
        .iter()
        .find(|s| s.file == file && s.receiver == receiver)
}

/// Atomic method names (tokens following a `.`).
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One attributed atomic operation.
pub struct AtomicOp {
    pub receiver: Option<String>,
    pub method: String,
    pub orderings: Vec<String>,
    pub line: usize,
}

/// Extracts the atomic operations in `toks[lo..hi]`. An op is a `.`
/// followed by an atomic method name and a call group that names at
/// least one `Ordering` variant (calls without an ordering argument are
/// some other type's `load`/`store` and are skipped).
pub fn atomic_ops(toks: &[Tok], lo: usize, hi: usize) -> Vec<AtomicOp> {
    let mut out = Vec::new();
    for k in lo..hi.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !ATOMIC_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if k == 0 || !toks[k - 1].is_punct(".") {
            continue;
        }
        let Some(open) = toks.get(k + 1).filter(|n| n.is_open('(')) else {
            continue;
        };
        let _ = open;
        let close = matching_close(toks, k + 1);
        let orderings: Vec<String> = toks[k + 1..close.min(hi)]
            .iter()
            .filter(|a| a.kind == TokKind::Ident && ORDERINGS.contains(&a.text.as_str()))
            .map(|a| a.text.clone())
            .collect();
        if orderings.is_empty() {
            continue;
        }
        let chain = receiver_chain(toks, k - 1);
        out.push(AtomicOp {
            receiver: chain.last().cloned(),
            method: t.text.clone(),
            orderings,
            line: t.line,
        });
    }
    out
}

/// Checks every atomic op in the non-test functions of a scoped file.
pub fn check(path: &str, toks: &[Tok], fns: &[FnItem], out: &mut Vec<Finding>) {
    // The table keys on core modules; a same-named file in another crate
    // (the conformance crate also has a concurrent.rs) is out of scope.
    if !path.replace('\\', "/").contains("crates/core/src/") {
        return;
    }
    let file = file_name(path);
    if !scoped_files().contains(&file) {
        return;
    }
    for f in fns.iter().filter(|f| !f.is_test) {
        let Some((open, close)) = f.body else {
            continue;
        };
        for op in atomic_ops(toks, open, close) {
            let Some(recv) = &op.receiver else {
                out.push(Finding::new(
                    path,
                    op.line,
                    "atomic-ordering",
                    format!(
                        "`.{}(…)` with an Ordering argument on a receiver this \
                         scanner cannot attribute; bind the atomic to a named \
                         local so the requirement table applies",
                        op.method
                    ),
                ));
                continue;
            };
            match lookup(file, recv) {
                Some(spec) => match spec.req {
                    Req::SeqCst => {
                        for o in &op.orderings {
                            if o != "SeqCst" {
                                out.push(Finding::new(
                                    path,
                                    op.line,
                                    "atomic-ordering",
                                    format!(
                                        "Ordering::{o} on `{recv}.{}`: the requirement \
                                         table demands SeqCst — {}",
                                        op.method, spec.rationale
                                    ),
                                ));
                            }
                        }
                    }
                    Req::AcqRel => {
                        for o in &op.orderings {
                            if o == "Relaxed" {
                                out.push(Finding::new(
                                    path,
                                    op.line,
                                    "atomic-ordering",
                                    format!(
                                        "Ordering::Relaxed on `{recv}.{}`: the requirement \
                                         table demands acquire/release — {}",
                                        op.method, spec.rationale
                                    ),
                                ));
                            }
                        }
                    }
                    Req::Relaxed => {}
                },
                None => {
                    if op.orderings.iter().any(|o| o == "Relaxed") {
                        out.push(Finding::new(
                            path,
                            op.line,
                            "atomic-ordering",
                            format!(
                                "Ordering::Relaxed on `{recv}` which has no entry in \
                                 the atomic-ordering requirement table; add a \
                                 rationale'd Relaxed entry or use a stronger ordering"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Stale-entry self-check against a *real* scoped file's tokens: every
/// spec receiver must be mentioned somewhere in it (otherwise the table
/// rotted). Called from [`crate::scopes::self_check`] on the tree —
/// deliberately not from [`check`], which also runs on small fixture
/// sources under virtual core paths.
pub fn stale_specs(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let file = file_name(path);
    for spec in SPECS.iter().filter(|s| s.file == file) {
        if !toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == spec.receiver)
        {
            out.push(Finding::new(
                path,
                1,
                "scope-coverage",
                format!(
                    "atomic-ordering spec entry `{}:{}` matches nothing in the \
                     file; delete the stale entry",
                    spec.file, spec.receiver
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_has_a_rationale_and_is_unique() {
        for s in SPECS {
            assert!(
                !s.rationale.trim().is_empty(),
                "{}:{} needs a rationale",
                s.file,
                s.receiver
            );
            assert_eq!(
                SPECS
                    .iter()
                    .filter(|o| o.file == s.file && o.receiver == s.receiver)
                    .count(),
                1,
                "duplicate spec {}:{}",
                s.file,
                s.receiver
            );
        }
    }

    #[test]
    fn scope_covers_the_protocol_files() {
        let files = scoped_files();
        for f in [
            "shard.rs",
            "seqsnap.rs",
            "ingest.rs",
            "concurrent.rs",
            "heater.rs",
            "envcfg.rs",
            "addr.rs",
        ] {
            assert!(files.contains(&f), "{f} missing from ordering scope");
        }
    }

    #[test]
    fn atomic_op_extraction_reads_receiver_and_orderings() {
        let toks = crate::token::tokenize(&crate::scan::scan(
            "self.state.compare_exchange(UNSET, enc, Ordering::Relaxed, Ordering::Acquire);\n\
             regular.load(factor);\n",
        ));
        let ops = atomic_ops(&toks, 0, toks.len());
        assert_eq!(ops.len(), 1, "the orderless load is not an atomic op");
        assert_eq!(ops[0].receiver.as_deref(), Some("state"));
        assert_eq!(ops[0].orderings, vec!["Relaxed", "Acquire"]);
    }
}
