//! Fixture suite: every rule must catch its seeded violation with a
//! `file:line` diagnostic, and the real workspace tree must be clean.
//!
//! The fixtures live in `tests/fixtures/` (excluded from [`spc_analyzer::run`]'s
//! walk) and are analyzed under *virtual paths* so the path-scoped rules
//! (`shard.rs`, `list/*.rs`, hot-path modules) engage.

use std::path::Path;

use spc_analyzer::{analyze_source, Finding};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

fn assert_diagnostic_shape(f: &Finding, virtual_path: &str) {
    let rendered = f.to_string();
    assert!(
        rendered.starts_with(&format!("{}:{}:", virtual_path, f.line)),
        "diagnostic must lead with file:line, got {rendered}"
    );
    assert!(f.line > 0, "line numbers are 1-based");
}

#[test]
fn missing_safety_is_caught_once() {
    let path = "crates/demo/src/lib.rs";
    let findings = analyze_source(path, &fixture("missing_safety.rs"));
    let hits = rule_findings(&findings, "safety-comment");
    assert_eq!(hits.len(), 1, "exactly the unjustified block: {findings:?}");
    assert_eq!(hits[0].line, 4, "the seeded `unsafe {{ *p }}` line");
    assert_diagnostic_shape(hits[0], path);
    assert_eq!(findings.len(), 1, "no other rule fires: {findings:?}");
}

#[test]
fn ungated_intrinsic_is_caught() {
    let path = "crates/demo/src/warm.rs";
    let findings = analyze_source(path, &fixture("ungated_intrinsic.rs"));
    let hits = rule_findings(&findings, "intrinsic-gating");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 6, "the `_mm_prefetch` call line");
    assert!(hits[0].message.contains("cfg(target_arch"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn gated_intrinsic_without_fallback_is_caught() {
    let path = "crates/demo/src/warm.rs";
    let src = "#[cfg(target_arch = \"x86_64\")]\npub fn warm(p: *const u8) {\n    \
               // SAFETY: prefetch never faults.\n    \
               unsafe { core::arch::x86_64::_mm_prefetch::<0>(p as *const i8) };\n}\n";
    let findings = analyze_source(path, src);
    let hits = rule_findings(&findings, "intrinsic-gating");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("portable fallback"));
}

#[test]
fn simd_kernel_without_portable_fallback_is_caught() {
    let path = "crates/demo/src/simd.rs";
    let findings = analyze_source(path, &fixture("simd_nofallback.rs"));
    let hits = rule_findings(&findings, "intrinsic-gating");
    assert_eq!(
        hits.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![7, 10, 11],
        "the `arch::x86_64` import and both `_mm256_` call lines: {findings:?}"
    );
    for h in &hits {
        assert!(h.message.contains("portable fallback"), "{h}");
        assert_diagnostic_shape(h, path);
    }
    assert_eq!(findings.len(), 3, "no other rule fires: {findings:?}");
}

#[test]
fn shipped_simd_module_passes() {
    // The real kernels must satisfy the discipline the fixture violates:
    // `cfg(target_arch)` gate + `cfg(not(target_arch …))` fallback, SAFETY
    // on every unsafe, and no clocks/randomness (simd.rs is hot-path).
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src/simd.rs");
    let src = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
    let findings = analyze_source("crates/core/src/simd.rs", &src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn nested_shard_lock_is_caught() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("nested_lock.rs"));
    let hits = rule_findings(&findings, "lock-discipline");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 8, "the shard acquisition under the wild lock");
    assert!(hits[0].message.contains("Wild"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn shard_then_wild_is_legal() {
    let path = "crates/core/src/shard.rs";
    let src = "impl E {\n    fn ok(&self) {\n        let g = self.shards[0].lock();\n        \
               let w = self.wild.lock();\n        let _ = (&g, &w);\n    }\n}\n";
    let findings = analyze_source(path, src);
    assert!(
        rule_findings(&findings, "lock-discipline").is_empty(),
        "shards-then-wild is the documented order: {findings:?}"
    );
}

#[test]
fn drop_releases_a_guard() {
    let path = "crates/core/src/shard.rs";
    let src = "impl E {\n    fn ok(&self) {\n        let w = self.wild.lock();\n        \
               drop(w);\n        let g = self.shards[0].lock();\n        let _ = g;\n    }\n}\n";
    let findings = analyze_source(path, src);
    assert!(
        rule_findings(&findings, "lock-discipline").is_empty(),
        "dropping the wild guard re-legalizes shard acquisition: {findings:?}"
    );
}

#[test]
fn relaxed_on_guarded_atomic_is_caught() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("relaxed_guarded.rs"));
    let hits = rule_findings(&findings, "atomic-ordering");
    assert_eq!(
        hits.len(),
        2,
        "guarded atomic + missing-table-entry atomic: {findings:?}"
    );
    assert_eq!(hits[0].line, 7, "Relaxed on wild_len");
    assert!(hits[0].message.contains("wild_len"));
    assert!(hits[0].message.contains("SeqCst"));
    assert_eq!(
        hits[1].line, 11,
        "Relaxed on an atomic missing a requirement-table entry"
    );
    assert!(hits[1].message.contains("bananas"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn sink_bypass_is_caught() {
    let path = "crates/core/src/list/bad.rs";
    let findings = analyze_source(path, &fixture("sink_bypass.rs"));
    let hits = rule_findings(&findings, "sink-routing");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 6, "the bypassing search_remove signature");
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn hot_path_clock_is_caught() {
    let path = "crates/core/src/engine.rs";
    let findings = analyze_source(path, &fixture("hotpath_clock.rs"));
    let hits = rule_findings(&findings, "hot-path-determinism");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 6, "the Instant::now line");
    assert!(hits[0].message.contains("Instant::now"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn adaptive_controller_clock_is_caught() {
    // The adaptive prefetch controller lives in prefetch.rs and must pace
    // its retune epochs on op counts, never the wall clock; a clock-paced
    // variant is the shape of regression this rule exists to stop.
    let path = "crates/core/src/prefetch.rs";
    let findings = analyze_source(path, &fixture("adaptive_clock.rs"));
    let hits = rule_findings(&findings, "hot-path-determinism");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 10, "the Instant::now line");
    assert!(hits[0].message.contains("Instant::now"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn envcfg_is_hot_path_scoped() {
    // envcfg.rs backs the scan-kind and prefetch-scheme switches read on
    // every traversal; it joined HOT_PATH_FILES when EnvSwitch was factored
    // out, so clock reads there must fire like any other hot-path module.
    let findings = analyze_source("crates/core/src/envcfg.rs", &fixture("hotpath_clock.rs"));
    assert_eq!(rule_findings(&findings, "hot-path-determinism").len(), 1);
}

#[test]
fn clock_outside_hot_path_is_fine() {
    // Same source under heater.rs (background thread, not measured) passes.
    let findings = analyze_source("crates/core/src/heater.rs", &fixture("hotpath_clock.rs"));
    assert!(rule_findings(&findings, "hot-path-determinism").is_empty());
}

#[test]
fn rule_tokens_in_comments_and_strings_do_not_fire() {
    let path = "crates/core/src/shard.rs";
    let src = "// unsafe Ordering::Relaxed _mm_prefetch Instant::now\n\
               fn name() -> &'static str {\n    \"unsafe Instant::now\"\n}\n";
    let findings = analyze_source(path, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn workspace_tree_is_clean() {
    // CARGO_MANIFEST_DIR = crates/analyzer; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let result = spc_analyzer::run(&root).expect("walk workspace");
    assert!(
        result.findings.is_empty(),
        "the real tree must pass its own gates:\n{}",
        result
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        result.dot.contains("digraph lock_order"),
        "the run must also produce the lock-order DOT artifact"
    );
}

#[test]
fn ordering_spec_rationales_are_nonempty() {
    for e in spc_analyzer::ordering::SPECS {
        assert!(
            !e.rationale.trim().is_empty(),
            "{}:{} needs a rationale",
            e.file,
            e.receiver
        );
    }
}

// ---------------------------------------------------------------------------
// Seqlock writer protocol (SPC07)
// ---------------------------------------------------------------------------

#[test]
fn seqlock_reordered_stamp_is_caught() {
    let path = "crates/core/src/seqsnap.rs";
    let findings = analyze_source(path, &fixture("seqlock_reorder.rs"));
    let hits = rule_findings(&findings, "seqlock-protocol");
    assert!(!hits.is_empty(), "{findings:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("stamp")),
        "the mutation-before-stamp order must be named: {hits:?}"
    );
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn seqlock_skipped_end_is_caught() {
    let path = "crates/core/src/seqsnap.rs";
    let findings = analyze_source(path, &fixture("seqlock_skip_end.rs"));
    let hits = rule_findings(&findings, "seqlock-protocol");
    assert!(!hits.is_empty(), "{findings:?}");
    assert!(
        hits.iter()
            .any(|f| f.message.contains("window still open") || f.message.contains("end")),
        "the open write window must be reported: {hits:?}"
    );
}

#[test]
fn seqlock_correct_writer_is_clean() {
    let path = "crates/core/src/seqsnap.rs";
    let findings = analyze_source(path, &fixture("seqlock_ok.rs"));
    assert!(
        rule_findings(&findings, "seqlock-protocol").is_empty(),
        "begin → mutate → stamp → end is the documented protocol: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// SPSC ring protocol (SPC08)
// ---------------------------------------------------------------------------

#[test]
fn spsc_dual_producer_is_caught() {
    let path = "crates/core/src/ingest.rs";
    let findings = analyze_source(path, &fixture("spsc_dual_producer.rs"));
    let hits = rule_findings(&findings, "spsc-protocol");
    assert!(!hits.is_empty(), "{findings:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("producer")),
        "{hits:?}"
    );
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn spsc_slot_write_after_publish_is_caught() {
    let path = "crates/core/src/ingest.rs";
    let findings = analyze_source(path, &fixture("spsc_reorder.rs"));
    let hits = rule_findings(&findings, "spsc-protocol");
    assert!(!hits.is_empty(), "{findings:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("advance")),
        "the slot-after-advance order must be named: {hits:?}"
    );
}

#[test]
fn spsc_correct_publish_order_is_clean() {
    let path = "crates/core/src/ingest.rs";
    let findings = analyze_source(path, &fixture("spsc_ok.rs"));
    assert!(
        rule_findings(&findings, "spsc-protocol").is_empty(),
        "slots-then-tail / slots-then-head is the documented order: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Lock-order graph (SPC09)
// ---------------------------------------------------------------------------

#[test]
fn lock_order_cycle_is_caught() {
    let path = "crates/core/src/engine.rs";
    let findings = analyze_source(path, &fixture("lock_cycle.rs"));
    let hits = rule_findings(&findings, "lock-order-graph");
    assert!(!hits.is_empty(), "{findings:?}");
    assert!(
        hits[0].message.contains("cycle"),
        "the cycle must be spelled out: {hits:?}"
    );
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn consistent_lock_order_has_no_cycle() {
    let path = "crates/core/src/engine.rs";
    let src = "impl E {\n    fn a(&self) {\n        let g1 = self.alpha.lock();\n        \
               let g2 = self.beta.lock();\n        let _ = (&g1, &g2);\n    }\n    \
               fn b(&self) {\n        let g1 = self.alpha.lock();\n        \
               let g2 = self.beta.lock();\n        let _ = (&g1, &g2);\n    }\n}\n";
    let findings = analyze_source(path, src);
    assert!(
        rule_findings(&findings, "lock-order-graph").is_empty(),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Hot-path cost lints (SPC10–SPC12)
// ---------------------------------------------------------------------------

#[test]
fn hot_path_alloc_is_caught() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("hot_alloc.rs"));
    let hits = rule_findings(&findings, "hot-path-alloc");
    assert_eq!(hits.len(), 2, "the vec! and the growing push: {findings:?}");
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn hot_path_panic_is_caught() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("hot_panic.rs"));
    let hits = rule_findings(&findings, "hot-path-panic");
    assert_eq!(
        hits.len(),
        2,
        "the unwrap and the panic!; the lock-poisoning expect is exempt: {findings:?}"
    );
}

#[test]
fn simd_dispatch_without_inline_is_caught() {
    let path = "crates/core/src/simd.rs";
    let findings = analyze_source(path, &fixture("inline_nodispatch.rs"));
    let hits = rule_findings(&findings, "inline-dispatch");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("scan_slab"), "{hits:?}");
}

// ---------------------------------------------------------------------------
// Suppressions and machine-readable output (SPC14 + diag)
// ---------------------------------------------------------------------------

#[test]
fn unused_suppression_fails_the_run() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("unused_allow.rs"));
    let hits = rule_findings(&findings, "suppression-hygiene");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("unused suppression"), "{hits:?}");
}

#[test]
fn suppression_with_rationale_silences_a_finding() {
    let path = "crates/core/src/shard.rs";
    let src = "impl E {\n    fn probe(&self) {\n        \
               // spc-allow(hot-path-alloc): scratch for a cold diagnostics branch\n        \
               let v = vec![0u8; 4];\n        let _ = v;\n    }\n}\n";
    let findings = analyze_source(path, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn json_and_sarif_outputs_are_well_formed() {
    let findings = analyze_source("crates/core/src/engine.rs", &fixture("hotpath_clock.rs"));
    assert!(!findings.is_empty());
    let json = spc_analyzer::diag::to_json(&findings);
    assert!(json.contains("\"schema\": \"spc-analyzer/1\""), "{json}");
    assert!(json.contains("\"rule_id\": \"SPC06\""), "{json}");
    let sarif = spc_analyzer::diag::to_sarif(&findings);
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"SPC06\""), "{sarif}");
}

#[test]
fn baseline_subtracts_known_findings_only() {
    let findings = analyze_source("crates/core/src/engine.rs", &fixture("hotpath_clock.rs"));
    let baseline_text = spc_analyzer::diag::write_baseline(&findings);
    let entries = spc_analyzer::diag::parse_baseline(&baseline_text).expect("round-trip");
    let diffed = spc_analyzer::diag::diff_baseline(findings.clone(), &entries);
    assert!(diffed.is_empty(), "baselined findings are subtracted");
    let fresh = analyze_source("crates/core/src/prefetch.rs", &fixture("adaptive_clock.rs"));
    let still_there = spc_analyzer::diag::diff_baseline(fresh, &entries);
    assert!(
        !still_there.is_empty(),
        "findings not in the baseline must survive the diff"
    );
}

#[test]
fn every_rule_has_a_stable_registry_entry() {
    let ids: Vec<&str> = spc_analyzer::diag::RULES.iter().map(|r| r.id).collect();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            *id,
            format!("SPC{:02}", i + 1),
            "registry must stay append-only and densely numbered"
        );
    }
    assert_eq!(ids.len(), 14);
}
