//! Fixture suite: every rule must catch its seeded violation with a
//! `file:line` diagnostic, and the real workspace tree must be clean.
//!
//! The fixtures live in `tests/fixtures/` (excluded from [`spc_analyzer::run`]'s
//! walk) and are analyzed under *virtual paths* so the path-scoped rules
//! (`shard.rs`, `list/*.rs`, hot-path modules) engage.

use std::path::Path;

use spc_analyzer::{analyze_source, Finding};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

fn assert_diagnostic_shape(f: &Finding, virtual_path: &str) {
    let rendered = f.to_string();
    assert!(
        rendered.starts_with(&format!("{}:{}:", virtual_path, f.line)),
        "diagnostic must lead with file:line, got {rendered}"
    );
    assert!(f.line > 0, "line numbers are 1-based");
}

#[test]
fn missing_safety_is_caught_once() {
    let path = "crates/demo/src/lib.rs";
    let findings = analyze_source(path, &fixture("missing_safety.rs"));
    let hits = rule_findings(&findings, "safety-comment");
    assert_eq!(hits.len(), 1, "exactly the unjustified block: {findings:?}");
    assert_eq!(hits[0].line, 4, "the seeded `unsafe {{ *p }}` line");
    assert_diagnostic_shape(hits[0], path);
    assert_eq!(findings.len(), 1, "no other rule fires: {findings:?}");
}

#[test]
fn ungated_intrinsic_is_caught() {
    let path = "crates/demo/src/warm.rs";
    let findings = analyze_source(path, &fixture("ungated_intrinsic.rs"));
    let hits = rule_findings(&findings, "intrinsic-gating");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 6, "the `_mm_prefetch` call line");
    assert!(hits[0].message.contains("cfg(target_arch"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn gated_intrinsic_without_fallback_is_caught() {
    let path = "crates/demo/src/warm.rs";
    let src = "#[cfg(target_arch = \"x86_64\")]\npub fn warm(p: *const u8) {\n    \
               // SAFETY: prefetch never faults.\n    \
               unsafe { core::arch::x86_64::_mm_prefetch::<0>(p as *const i8) };\n}\n";
    let findings = analyze_source(path, src);
    let hits = rule_findings(&findings, "intrinsic-gating");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("portable fallback"));
}

#[test]
fn simd_kernel_without_portable_fallback_is_caught() {
    let path = "crates/demo/src/simd.rs";
    let findings = analyze_source(path, &fixture("simd_nofallback.rs"));
    let hits = rule_findings(&findings, "intrinsic-gating");
    assert_eq!(
        hits.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![7, 10, 11],
        "the `arch::x86_64` import and both `_mm256_` call lines: {findings:?}"
    );
    for h in &hits {
        assert!(h.message.contains("portable fallback"), "{h}");
        assert_diagnostic_shape(h, path);
    }
    assert_eq!(findings.len(), 3, "no other rule fires: {findings:?}");
}

#[test]
fn shipped_simd_module_passes() {
    // The real kernels must satisfy the discipline the fixture violates:
    // `cfg(target_arch)` gate + `cfg(not(target_arch …))` fallback, SAFETY
    // on every unsafe, and no clocks/randomness (simd.rs is hot-path).
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src/simd.rs");
    let src = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
    let findings = analyze_source("crates/core/src/simd.rs", &src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn nested_shard_lock_is_caught() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("nested_lock.rs"));
    let hits = rule_findings(&findings, "lock-discipline");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 8, "the shard acquisition under the wild lock");
    assert!(hits[0].message.contains("Wild"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn shard_then_wild_is_legal() {
    let path = "crates/core/src/shard.rs";
    let src = "impl E {\n    fn ok(&self) {\n        let g = self.shards[0].lock();\n        \
               let w = self.wild.lock();\n        let _ = (&g, &w);\n    }\n}\n";
    let findings = analyze_source(path, src);
    assert!(
        rule_findings(&findings, "lock-discipline").is_empty(),
        "shards-then-wild is the documented order: {findings:?}"
    );
}

#[test]
fn drop_releases_a_guard() {
    let path = "crates/core/src/shard.rs";
    let src = "impl E {\n    fn ok(&self) {\n        let w = self.wild.lock();\n        \
               drop(w);\n        let g = self.shards[0].lock();\n        let _ = g;\n    }\n}\n";
    let findings = analyze_source(path, src);
    assert!(
        rule_findings(&findings, "lock-discipline").is_empty(),
        "dropping the wild guard re-legalizes shard acquisition: {findings:?}"
    );
}

#[test]
fn relaxed_on_guarded_atomic_is_caught() {
    let path = "crates/core/src/shard.rs";
    let findings = analyze_source(path, &fixture("relaxed_guarded.rs"));
    let hits = rule_findings(&findings, "relaxed-ordering");
    assert_eq!(
        hits.len(),
        2,
        "guarded atomic + non-allowlisted: {findings:?}"
    );
    assert_eq!(hits[0].line, 7, "Relaxed on wild_len");
    assert!(hits[0].message.contains("wild_len"));
    assert!(hits[0].message.contains("SeqCst"));
    assert_eq!(
        hits[1].line, 11,
        "Relaxed on an atomic missing an allowlist entry"
    );
    assert!(hits[1].message.contains("bananas"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn sink_bypass_is_caught() {
    let path = "crates/core/src/list/bad.rs";
    let findings = analyze_source(path, &fixture("sink_bypass.rs"));
    let hits = rule_findings(&findings, "sink-routing");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 6, "the bypassing search_remove signature");
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn hot_path_clock_is_caught() {
    let path = "crates/core/src/engine.rs";
    let findings = analyze_source(path, &fixture("hotpath_clock.rs"));
    let hits = rule_findings(&findings, "hot-path-determinism");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 6, "the Instant::now line");
    assert!(hits[0].message.contains("Instant::now"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn adaptive_controller_clock_is_caught() {
    // The adaptive prefetch controller lives in prefetch.rs and must pace
    // its retune epochs on op counts, never the wall clock; a clock-paced
    // variant is the shape of regression this rule exists to stop.
    let path = "crates/core/src/prefetch.rs";
    let findings = analyze_source(path, &fixture("adaptive_clock.rs"));
    let hits = rule_findings(&findings, "hot-path-determinism");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 10, "the Instant::now line");
    assert!(hits[0].message.contains("Instant::now"));
    assert_diagnostic_shape(hits[0], path);
}

#[test]
fn envcfg_is_hot_path_scoped() {
    // envcfg.rs backs the scan-kind and prefetch-scheme switches read on
    // every traversal; it joined HOT_PATH_FILES when EnvSwitch was factored
    // out, so clock reads there must fire like any other hot-path module.
    let findings = analyze_source("crates/core/src/envcfg.rs", &fixture("hotpath_clock.rs"));
    assert_eq!(rule_findings(&findings, "hot-path-determinism").len(), 1);
}

#[test]
fn clock_outside_hot_path_is_fine() {
    // Same source under heater.rs (background thread, not measured) passes.
    let findings = analyze_source("crates/core/src/heater.rs", &fixture("hotpath_clock.rs"));
    assert!(rule_findings(&findings, "hot-path-determinism").is_empty());
}

#[test]
fn rule_tokens_in_comments_and_strings_do_not_fire() {
    let path = "crates/core/src/shard.rs";
    let src = "// unsafe Ordering::Relaxed _mm_prefetch Instant::now\n\
               fn name() -> &'static str {\n    \"unsafe Instant::now\"\n}\n";
    let findings = analyze_source(path, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn workspace_tree_is_clean() {
    // CARGO_MANIFEST_DIR = crates/analyzer; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let findings = spc_analyzer::run(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "the real tree must pass its own gates:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_rationales_are_nonempty() {
    for e in spc_analyzer::allowlist::RELAXED_ALLOWLIST {
        assert!(
            !e.rationale.trim().is_empty(),
            "{}:{} needs a rationale",
            e.file,
            e.receiver
        );
    }
}
