//! Seeded violation: two functions acquire the same pair of mutexes in
//! opposite orders — a cycle in the lock-order graph (deadlock).
//! Analyzed under the virtual path `crates/core/src/engine.rs`.

impl BadEngine {
    fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        let _ = (&a, &b);
    }

    fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        let _ = (&a, &b);
    }
}
