//! Seeded violation: two spawned closures push into the same ring via
//! cloned handles — the SPSC contract admits exactly one producer.
//! Analyzed under the virtual path `crates/core/src/ingest.rs`.

fn drive(ring: &Arc<IngestRing>) {
    let r1 = ring.clone();
    let r2 = ring.clone();
    let a = std::thread::spawn(move || {
        r1.try_push(1, 2, 3);
    });
    let b = std::thread::spawn(move || {
        r2.try_push(4, 5, 6);
    });
    let _ = a.join();
    let _ = b.join();
}
