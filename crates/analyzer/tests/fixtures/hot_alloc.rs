//! Seeded violation: heap allocation in a hot-path function — a `vec!`
//! scratch buffer plus a growing `.push` with no pre-sizing.
//! Analyzed under the virtual path `crates/core/src/shard.rs`.

impl BadShard {
    fn probe(&mut self, n: usize) {
        let mut scratch = vec![0u64; n];
        scratch.push(1);
        let _ = scratch;
    }
}
