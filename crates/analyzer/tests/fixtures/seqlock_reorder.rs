//! Seeded violation: a seqlock writer that mutates published rows
//! before taking the seq stamp inside the write window.
//! Analyzed under the virtual path `crates/core/src/seqsnap.rs`.

impl BadWriter {
    pub fn publish(&mut self, k: u64, v: u64) {
        self.snap.begin_write();
        self.snap.append(0, k, v);
        let seq = self.next_seq();
        self.snap.end_write();
        let _ = seq;
    }
}
