//! Seeded violation: panic edges in a hot-path function — an `.unwrap()`
//! and a `panic!`. The lock-poisoning `.expect()` chained directly on
//! the lock call is the documented carve-out and must not fire.
//! Analyzed under the virtual path `crates/core/src/shard.rs`.

impl BadShard {
    fn probe(&self) -> u64 {
        let g = self.wild.lock().expect("poisoned");
        let v = self.table.get(0).unwrap();
        if *v == 0 {
            panic!("empty table");
        }
        *v + g.len
    }
}
