//! Negative fixture: the documented SPSC publish/consume order — all
//! slot words land before the index advance on both sides.
//! Analyzed under the virtual path `crates/core/src/ingest.rs`.

impl GoodRing {
    pub fn try_push(&self, a: u64, b: u64) -> bool {
        let t = self.tail.load(Ordering::SeqCst);
        self.slot(t).w0.store(a, Ordering::SeqCst);
        self.slot(t).w1.store(b, Ordering::SeqCst);
        self.tail.store(t + 1, Ordering::SeqCst);
        true
    }

    pub fn pop(&self) -> Option<u64> {
        let h = self.head.load(Ordering::SeqCst);
        let v = self.slot(h).w0.load(Ordering::SeqCst);
        self.head.store(h + 1, Ordering::SeqCst);
        Some(v)
    }
}
