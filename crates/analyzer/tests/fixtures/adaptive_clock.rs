//! Seeded violation: an adaptive-distance controller that paces its epochs
//! with the wall clock instead of op counts. Analyzed under the virtual
//! path `crates/core/src/prefetch.rs` — the real controller advances on
//! `ADAPTIVE_EPOCH` op boundaries precisely so replays are deterministic.

impl BadAdaptiveDist {
    pub fn record_hit_depth(&mut self, depth: usize) {
        self.depth_sum += depth;
        self.ops += 1;
        let now = std::time::Instant::now();
        if now.duration_since(self.epoch_start) > EPOCH_WALL {
            self.retune();
            self.epoch_start = now;
        }
    }
}
