//! Seeded violation: a SIMD dispatch seam (a function taking the
//! `kind: ScanKind` selector) without `#[inline]` — the selector cannot
//! constant-fold at the call site. The inlined variant must not fire.
//! Analyzed under the virtual path `crates/core/src/simd.rs`.

pub fn scan_slab(kind: ScanKind, keys: &[u64], probe: u64) -> Option<u32> {
    let _ = (kind, keys, probe);
    None
}

#[inline(always)]
pub fn scan_one(kind: ScanKind, key: u64, probe: u64) -> bool {
    let _ = (kind, key, probe);
    false
}
