//! Seeded violation: an x86-64 intrinsic with no cfg gate or fallback.

pub fn warm(p: *const u8) {
    // SAFETY: prefetch never faults (fixture keeps rule 1 quiet).
    unsafe {
        core::arch::x86_64::_mm_prefetch::<0>(p as *const i8);
    }
}
