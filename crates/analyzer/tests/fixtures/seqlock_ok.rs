//! Negative fixture: the documented writer protocol — version-odd,
//! stamp, mutate, version-even — including a bulk lane sweep.
//! Analyzed under the virtual path `crates/core/src/seqsnap.rs`.

impl GoodWriter {
    pub fn publish(&mut self, k: u64, v: u64) {
        self.snap.begin_write();
        let seq = self.next_seq();
        self.snap.append(seq, k, v);
        self.snap.end_write();
    }

    pub fn sweep(&mut self) {
        for s in &self.snaps {
            s.begin();
        }
        self.next_seq();
        for s in &self.snaps {
            s.end();
        }
    }
}
