//! Seeded violation: a list function takes an AccessSink but reads entry
//! storage without charging it.
//! Analyzed under the virtual path `crates/core/src/list/bad.rs`.

impl BadList {
    pub fn search_remove<S: AccessSink>(&mut self, env: &Envelope, sink: &mut S) -> Option<u64> {
        for i in 0..self.len {
            let e = self.node.entries[i];
            if e.matches(env) {
                return Some(e.id);
            }
        }
        None
    }

    pub fn search_charged<S: AccessSink>(&mut self, env: &Envelope, sink: &mut S) -> Option<u64> {
        for i in 0..self.len {
            sink.read(self.node.sim_addr + (i as u64) * 24, 24);
            let e = self.node.entries[i];
            if e.matches(env) {
                return Some(e.id);
            }
        }
        None
    }
}
