//! Seeded violation: a suppression whose finding no longer exists —
//! stale allows must fail the run, not rot silently.
//! Analyzed under the virtual path `crates/core/src/shard.rs`.

impl FineShard {
    fn probe(&self) -> u64 {
        // spc-allow(hot-path-alloc): stale rationale kept after the alloc was removed
        self.len
    }
}
