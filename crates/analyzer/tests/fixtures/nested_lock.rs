//! Seeded violation: wildcard-lane lock held while taking a shard lock.
//! Analyzed under the virtual path `crates/core/src/shard.rs`.

impl BadEngine {
    pub fn post_recv_wild_bad(&self, e: PostedEntry) {
        let mut wild = self.wild.lock();
        wild.prq.push(e);
        let mut shard = self.shards[0].lock();
        shard.note();
    }

    pub fn drain_ok(&self) {
        let guards = self.lock_all();
        let mut wild = self.wild.lock();
        let _ = (&guards, &mut wild);
    }
}
