//! Seeded violation: a slot word stored after the tail advance — the
//! consumer can observe the slot before the word lands (torn publish).
//! Analyzed under the virtual path `crates/core/src/ingest.rs`.

impl BadRing {
    pub fn try_push(&self, a: u64, b: u64) -> bool {
        let t = self.tail.load(Ordering::SeqCst);
        self.slot(t).w0.store(a, Ordering::SeqCst);
        self.tail.store(t + 1, Ordering::SeqCst);
        self.slot(t).w1.store(b, Ordering::SeqCst);
        true
    }
}
