//! Seeded violation: wall-clock read inside a hot-path module.
//! Analyzed under the virtual path `crates/core/src/engine.rs`.

impl BadEngine {
    pub fn arrival_timed(&mut self, e: UnexpectedEntry) -> u64 {
        let t0 = std::time::Instant::now();
        self.umq.push(e);
        t0.elapsed().as_nanos() as u64
    }
}
