//! Seeded violation: an early-return path leaves the write window open
//! (version word stuck odd; lock-free readers retry forever).
//! Analyzed under the virtual path `crates/core/src/seqsnap.rs`.

impl BadWriter {
    pub fn publish(&mut self, k: u64, v: u64) -> bool {
        self.snap.begin_write();
        let seq = self.next_seq();
        if self.full() {
            return false;
        }
        self.snap.append(seq, k, v);
        self.snap.end_write();
        true
    }
}
