//! Seeded violation: Ordering::Relaxed on a wildcard-lane protocol atomic,
//! plus Relaxed on an atomic missing from the allowlist.
//! Analyzed under the virtual path `crates/core/src/shard.rs`.

impl BadEngine {
    pub fn post_recv_wild_bad(&self, n: u64) {
        self.wild_len.fetch_add(n, Ordering::Relaxed);
    }

    pub fn tally(&self) -> u64 {
        self.bananas.load(Ordering::Relaxed)
    }

    pub fn tally_ok(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }
}
