//! Fixture: a vector scan kernel gated for x86-64 — but with no negated-cfg
//! portable fallback anywhere in the module, so a non-x86 build of it has no
//! scan path at all. Rule 2 must flag every intrinsic line.

#[cfg(target_arch = "x86_64")]
pub fn scan(keys: &[u64]) -> u32 {
    use core::arch::x86_64::*;
    // SAFETY: fixture pretends the caller verified AVX2 and `keys.len() >= 4`.
    unsafe {
        let v = _mm256_loadu_si256(keys.as_ptr() as *const __m256i);
        _mm256_movemask_epi8(v) as u32
    }
}
