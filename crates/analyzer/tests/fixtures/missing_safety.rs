//! Seeded violation: an `unsafe` block with no SAFETY justification.

pub fn peek(p: *const u8) -> u8 {
    let v = unsafe { *p };
    v
}

pub fn peek_justified(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture control).
    let v = unsafe { *p };
    v
}
