//! # spc-minibench — offline Criterion-compatible bench harness
//!
//! The bench suite was written against [Criterion](https://docs.rs/criterion),
//! which this build environment cannot fetch (no network, no registry
//! cache). This crate implements the slice of Criterion's API those benches
//! actually use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!` — on
//! top of `std::time::Instant`, so the bench targets build and run with zero
//! external dependencies. The bench sources keep `use criterion::...`
//! unchanged via a renamed path dependency
//! (`criterion = { path = "../minibench", package = "spc-minibench" }`).
//!
//! Measurement model: each benchmark is warmed up for a fixed fraction of
//! the measurement time, then timed in growing batches until the measurement
//! budget is spent; the reported figure is the mean wall-clock time per
//! iteration of the best batch. This is deliberately simple — no outlier
//! rejection, no regression — but deterministic in structure and honest
//! about what it prints.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &name.to_string(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing configuration (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work volume; recorded for display parity
    /// with Criterion but not otherwise used.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the batch count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (Criterion generates reports here; we print as we go).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id, for groups whose name already carries the function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declared work volume per iteration (mirrors `criterion::Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing callback handle passed to each benchmark closure (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibrate: grow the batch until one batch takes >= budget / samples.
    let per_sample = measurement_time / sample_size as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 24 {
            break;
        }
        // Aim directly for the per-sample budget once we have a signal.
        let scale = if b.elapsed.is_zero() {
            16.0
        } else {
            (per_sample.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64) * scale).ceil() as u64;
    }
    // Measure: `sample_size` batches, report the fastest mean (least noise).
    let mut best_ns = f64::INFINITY;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_secs_f64() * 1e9 / iters as f64;
        if ns < best_ns {
            best_ns = ns;
        }
    }
    println!("bench: {label:<48} {best_ns:>12.1} ns/iter  (x{iters})");
}

/// Declares a bench group function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.benchmark_group("g")
            .bench_function(BenchmarkId::new("f", 3), |b| {
                b.iter(|| {
                    runs += 1;
                    runs
                })
            });
        assert!(runs > 0, "closure must have been driven");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("search", 64).to_string(), "search/64");
        assert_eq!(BenchmarkId::from_parameter("lla8").to_string(), "lla8");
    }
}
