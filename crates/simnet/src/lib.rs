//! # spc-simnet — LogGP-style network timing model
//!
//! The paper's three clusters are modelled as LogGP parameter sets:
//! wire latency `L`, send/receive CPU overheads `o`, and long-message
//! bandwidth `1/G`. This captures exactly the behaviour the paper's
//! bandwidth figures show — small-message rates are CPU-bound (so matching
//! cost dominates and locality matters), large messages saturate the wire
//! (so "the network's data transfer speed becomes the bottleneck" and all
//! configurations converge).
//!
//! Bandwidth plateaus are calibrated to the paper's measured large-message
//! plateaus rather than the links' marketing numbers (a single rank does not
//! saturate a QDR link through MVAPICH).

#![warn(missing_docs)]

/// One interconnect + software-stack profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// One-way wire/switch latency in nanoseconds (`L`).
    pub latency_ns: f64,
    /// Sender CPU overhead per message in nanoseconds (`o_s`).
    pub send_overhead_ns: f64,
    /// Receiver CPU overhead per message in nanoseconds (`o_r`), excluding
    /// matching (that is what `spc-core`/`spc-cachesim` price).
    pub recv_overhead_ns: f64,
    /// Large-message streaming bandwidth in bytes per nanosecond (`1/G`).
    pub bandwidth_bpns: f64,
}

impl NetProfile {
    /// QLogic InfiniBand QDR — the Sandy Bridge system's fabric.
    pub fn qlogic_qdr() -> Self {
        Self {
            name: "QLogic-QDR",
            latency_ns: 1_300.0,
            send_overhead_ns: 250.0,
            recv_overhead_ns: 250.0,
            // Paper Fig. 4a plateau: ~3.3 GiB/s observed.
            bandwidth_bpns: 3.46,
        }
    }

    /// Intel OmniPath — the Broadwell system's fabric.
    pub fn omnipath() -> Self {
        Self {
            name: "OmniPath",
            latency_ns: 1_000.0,
            send_overhead_ns: 300.0,
            recv_overhead_ns: 300.0,
            // Paper Fig. 5a plateau: ~3.0 GiB/s observed.
            bandwidth_bpns: 3.15,
        }
    }

    /// Mellanox QDR — the Nehalem cluster's fabric.
    pub fn mellanox_qdr() -> Self {
        Self {
            name: "Mellanox-QDR",
            latency_ns: 1_500.0,
            send_overhead_ns: 300.0,
            recv_overhead_ns: 300.0,
            bandwidth_bpns: 3.2,
        }
    }

    /// Fast, readable parameters for unit tests.
    pub fn test_net() -> Self {
        Self {
            name: "TestNet",
            latency_ns: 100.0,
            send_overhead_ns: 10.0,
            recv_overhead_ns: 10.0,
            bandwidth_bpns: 1.0,
        }
    }

    /// Pure wire (serialization) time for `bytes`.
    pub fn wire_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bpns
    }

    /// End-to-end time of one isolated message of `bytes`, excluding
    /// receiver-side matching.
    pub fn msg_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + self.send_overhead_ns + self.recv_overhead_ns + self.wire_ns(bytes)
    }

    /// Time for a *pipelined window* of `n` messages of `bytes` each, where
    /// the receiver additionally spends `recv_cpu_ns` of CPU per message
    /// (matching + completion). The window is limited by whichever resource
    /// saturates: sender CPU, wire, or receiver CPU.
    pub fn window_ns(&self, n: u64, bytes: u64, recv_cpu_ns: f64) -> f64 {
        let n = n as f64;
        let sender = n * self.send_overhead_ns;
        let wire = n * self.wire_ns(bytes);
        let receiver = n * (self.recv_overhead_ns + recv_cpu_ns);
        self.latency_ns + sender.max(wire).max(receiver)
    }

    /// Log-tree collective cost for `ranks` participants moving `bytes`
    /// per stage (allreduce, broadcast...).
    pub fn tree_collective_ns(&self, ranks: u32, bytes: u64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let stages = 32 - (ranks - 1).leading_zeros();
        stages as f64 * self.msg_ns(bytes)
    }

    /// Barrier: a tree collective carrying no payload.
    pub fn barrier_ns(&self, ranks: u32) -> f64 {
        self.tree_collective_ns(ranks, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_linearly() {
        let n = NetProfile::test_net();
        assert_eq!(n.wire_ns(0), 0.0);
        assert_eq!(n.wire_ns(1000), 1000.0);
        assert_eq!(n.msg_ns(1000), 100.0 + 10.0 + 10.0 + 1000.0);
    }

    #[test]
    fn window_is_bound_by_the_slowest_resource() {
        let n = NetProfile::test_net();
        // Tiny messages, expensive receiver: receiver-bound.
        let t = n.window_ns(10, 1, 1000.0);
        assert_eq!(t, 100.0 + 10.0 * (10.0 + 1000.0));
        // Large messages, cheap receiver: wire-bound.
        let t = n.window_ns(10, 10_000, 0.0);
        assert_eq!(t, 100.0 + 10.0 * 10_000.0);
    }

    #[test]
    fn large_message_bandwidth_hits_the_plateau() {
        // Effective bandwidth of a 1 MiB window transfer approaches the
        // configured plateau — the paper's converged large-message regime.
        let n = NetProfile::qlogic_qdr();
        let bytes = 1u64 << 20;
        let t = n.window_ns(64, bytes, 500.0);
        let bw_bpns = (64 * bytes) as f64 / t;
        assert!(
            (bw_bpns / n.bandwidth_bpns) > 0.95,
            "got {bw_bpns} vs {}",
            n.bandwidth_bpns
        );
    }

    #[test]
    fn small_message_rate_is_cpu_bound() {
        // With a heavy matching cost, message rate is set by the receiver,
        // so halving match cost nearly doubles bandwidth — the locality
        // effect the paper measures.
        let n = NetProfile::qlogic_qdr();
        let slow = n.window_ns(64, 1, 20_000.0);
        let fast = n.window_ns(64, 1, 10_000.0);
        let ratio = slow / fast;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn collectives_grow_logarithmically() {
        let n = NetProfile::test_net();
        let b2 = n.barrier_ns(2);
        let b1024 = n.barrier_ns(1024);
        assert!((b1024 / b2 - 10.0).abs() < 1e-9, "log2(1024)=10 stages");
        assert_eq!(n.barrier_ns(1), 0.0);
        // Non-power-of-two rounds up.
        assert_eq!(n.barrier_ns(1025), 11.0 * n.msg_ns(0));
    }

    #[test]
    fn profiles_are_distinct_and_sane() {
        for p in [
            NetProfile::qlogic_qdr(),
            NetProfile::omnipath(),
            NetProfile::mellanox_qdr(),
        ] {
            assert!(p.latency_ns > 0.0 && p.bandwidth_bpns > 0.0, "{}", p.name);
            assert!(p.msg_ns(1) > p.wire_ns(1));
        }
    }
}
