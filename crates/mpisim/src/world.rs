//! The simulated world: ranks, clocks, and the BSP operation set.

use spc_cachesim::{ArchProfile, CostModel, LocalityConfig};
use spc_core::dynengine::{DynEngine, EngineKind};
use spc_core::engine::{ArrivalOutcome, RecvOutcome};
use spc_core::entry::{Envelope, RecvSpec};
use spc_core::stats::EngineStats;
use spc_simnet::NetProfile;

use crate::trace::{QueueTrace, TraceConfig};

/// Handle to a pending nonblocking receive (`MPI_Irecv` analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    rank: u32,
    id: u64,
}

/// What a completed receive delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Source rank of the matched message.
    pub source: u32,
    /// Tag of the matched message.
    pub tag: i32,
    /// Payload handle carried by the message.
    pub payload: u64,
}

/// World construction parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of ranks.
    pub ranks: u32,
    /// Queue structure per rank.
    pub engine: EngineKind,
    /// Price matching with this locality configuration on this
    /// architecture; `None` runs untimed (pure queue-behaviour studies like
    /// Figure 1, where only lengths matter).
    pub timing: Option<(ArchProfile, LocalityConfig)>,
    /// Network model.
    pub net: NetProfile,
    /// Queue-length tracing configuration, if wanted.
    pub trace: Option<TraceConfig>,
}

impl WorldConfig {
    /// Untimed world for queue-length studies.
    pub fn untimed(ranks: u32, trace_width: u64) -> Self {
        Self {
            ranks,
            engine: EngineKind::Baseline,
            timing: None,
            net: NetProfile::test_net(),
            trace: Some(TraceConfig::uniform(trace_width)),
        }
    }

    /// Timed world with the given locality configuration.
    pub fn timed(
        ranks: u32,
        engine: EngineKind,
        arch: ArchProfile,
        locality: LocalityConfig,
        net: NetProfile,
    ) -> Self {
        Self {
            ranks,
            engine,
            timing: Some((arch, locality)),
            net,
            trace: None,
        }
    }
}

struct Rank {
    engine: DynEngine,
    clock_ns: f64,
    /// Bytes received since the last barrier (drained into the clock then).
    phase_bytes_in: u64,
    msgs_sent: u64,
    msgs_received: u64,
}

/// Aggregated post-run statistics.
#[derive(Clone, Debug, Default)]
pub struct WorldStats {
    /// Merged matching-engine statistics across ranks.
    pub engine: EngineStats,
    /// Total messages sent.
    pub msgs_sent: u64,
    /// Simulated wall time (max rank clock), nanoseconds.
    pub elapsed_ns: f64,
}

/// A deterministic BSP world of MPI ranks.
pub struct SimWorld {
    cfg: WorldConfig,
    ranks: Vec<Rank>,
    cost: Option<CostModel>,
    trace: Option<QueueTrace>,
    next_payload: u64,
    /// Completions of nonblocking receives, keyed by request id.
    completions: std::collections::HashMap<u64, Completion>,
    /// Optional per-rank operation recording (trace-based methodology).
    recording: Option<(u32, spc_core::replay::MatchTrace)>,
}

impl SimWorld {
    /// Builds the world; engines are empty, clocks at zero.
    pub fn new(cfg: WorldConfig) -> Self {
        let ranks = (0..cfg.ranks)
            .map(|_| Rank {
                engine: DynEngine::new(cfg.engine),
                clock_ns: 0.0,
                phase_bytes_in: 0,
                msgs_sent: 0,
                msgs_received: 0,
            })
            .collect();
        let cost = cfg.timing.map(|(arch, loc)| CostModel::new(arch, loc));
        let trace = cfg.trace.map(QueueTrace::new);
        Self {
            cfg,
            ranks,
            cost,
            trace,
            next_payload: 0,
            completions: std::collections::HashMap::new(),
            recording: None,
        }
    }

    /// Starts recording rank `rank`'s matching operations into a
    /// [`spc_core::replay::MatchTrace`] (retrieve it with
    /// [`SimWorld::recorded_trace`]). Recording one representative rank of
    /// a motif turns it into an offline matching benchmark.
    pub fn record_rank(&mut self, rank: u32) {
        self.recording = Some((rank, spc_core::replay::MatchTrace::new()));
    }

    /// The trace recorded so far, if recording was enabled.
    pub fn recorded_trace(&self) -> Option<&spc_core::replay::MatchTrace> {
        self.recording.as_ref().map(|(_, t)| t)
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.cfg.ranks
    }

    /// Posts a receive on `rank` for (`src`, `tag`, `ctx`); returns the
    /// engine outcome.
    pub fn post_recv(&mut self, rank: u32, src: i32, tag: i32, ctx: u16) -> RecvOutcome {
        self.irecv(rank, src, tag, ctx);
        // The request id the irecv used is `next_payload - 1`; reconstruct
        // the outcome for callers that only need it coarsely.
        let id = self.next_payload - 1;
        if let Some(c) = self.completions.get(&id) {
            RecvOutcome::MatchedUnexpected {
                payload: c.payload,
                depth: 0,
            }
        } else {
            RecvOutcome::Posted
        }
    }

    /// Nonblocking receive: posts and returns a [`Request`] that completes
    /// when a matching send is issued (`MPI_Irecv`).
    pub fn irecv(&mut self, rank: u32, src: i32, tag: i32, ctx: u16) -> Request {
        let id = self.next_payload;
        if let Some((rec, trace)) = &mut self.recording {
            if *rec == rank {
                trace.post(RecvSpec::new(src, tag, ctx), id);
            }
        }
        let r = &mut self.ranks[rank as usize];
        let out = r.engine.post_recv(RecvSpec::new(src, tag, ctx), id);
        self.next_payload += 1;
        match out {
            RecvOutcome::Posted => {
                if let Some(c) = &mut self.cost {
                    r.clock_ns += c.append_ns();
                }
                if let Some(t) = &mut self.trace {
                    t.sample_posted(r.engine.prq_len());
                }
            }
            RecvOutcome::MatchedUnexpected { depth, payload } => {
                if let Some(c) = &mut self.cost {
                    r.clock_ns += c.arrival_ns(depth);
                }
                if let Some(t) = &mut self.trace {
                    t.sample_unexpected(r.engine.umq_len());
                }
                // The message had already arrived: complete immediately.
                // Source/tag details live with the sender; for unexpected
                // completions the payload identifies the message.
                self.completions.insert(
                    id,
                    Completion {
                        source: u32::MAX,
                        tag: -1,
                        payload,
                    },
                );
            }
        }
        Request { rank, id }
    }

    /// Nonblocking completion check (`MPI_Test`): `Some` once the matching
    /// send has been issued.
    pub fn test(&mut self, req: Request) -> Option<Completion> {
        self.completions.get(&req.id).copied()
    }

    /// Completion wait (`MPI_Wait`). The world is deterministic and
    /// caller-driven, so an incomplete request cannot complete "later" by
    /// itself — waiting on one is a deadlock, reported by panic exactly the
    /// way a hung `MPI_Wait` would be. Requests must be waited before the
    /// phase's [`SimWorld::barrier`], which releases completion records.
    pub fn wait(&mut self, req: Request) -> Completion {
        self.test(req).unwrap_or_else(|| {
            panic!(
                "MPI_Wait deadlock: request {} on rank {} has no matching send",
                req.id, req.rank
            )
        })
    }

    /// Waits on many requests (`MPI_Waitall`).
    pub fn waitall(&mut self, reqs: &[Request]) -> Vec<Completion> {
        reqs.iter().map(|&r| self.wait(r)).collect()
    }

    /// Sends `bytes` from `src` to `dst` with (`tag`, `ctx`). Delivery is
    /// immediate (BSP phases pre-post receives; unexpected arrivals queue).
    pub fn send(&mut self, src: u32, dst: u32, tag: i32, ctx: u16, bytes: u64) -> ArrivalOutcome {
        let payload = self.next_payload;
        self.next_payload += 1;
        if let Some((rec, trace)) = &mut self.recording {
            if *rec == dst {
                trace.arrival(Envelope::new(src as i32, tag, ctx), payload);
            }
        }
        {
            let s = &mut self.ranks[src as usize];
            s.msgs_sent += 1;
            s.clock_ns += self.cfg.net.send_overhead_ns;
        }
        let d = &mut self.ranks[dst as usize];
        d.msgs_received += 1;
        d.phase_bytes_in += bytes;
        let out = d
            .engine
            .arrival(Envelope::new(src as i32, tag, ctx), payload);
        match out {
            ArrivalOutcome::MatchedPosted { depth, request } => {
                self.completions.insert(
                    request,
                    Completion {
                        source: src,
                        tag,
                        payload,
                    },
                );
                d.clock_ns += self.cfg.net.recv_overhead_ns;
                if let Some(c) = &mut self.cost {
                    d.clock_ns += c.arrival_ns(depth);
                }
                if let Some(t) = &mut self.trace {
                    t.sample_posted(d.engine.prq_len());
                }
            }
            ArrivalOutcome::Queued => {
                d.clock_ns += self.cfg.net.recv_overhead_ns;
                if let Some(c) = &mut self.cost {
                    // The miss walked the whole PRQ, then appended.
                    let depth = d.engine.prq_len() as u32;
                    d.clock_ns += c.cold_search_ns(depth) + c.append_ns();
                }
                if let Some(t) = &mut self.trace {
                    t.sample_unexpected(d.engine.umq_len());
                }
            }
        }
        out
    }

    /// Charges `ns` of computation to `rank`.
    pub fn compute(&mut self, rank: u32, ns: f64) {
        self.ranks[rank as usize].clock_ns += ns;
    }

    /// Charges `ns` of computation to every rank.
    pub fn compute_all(&mut self, ns: f64) {
        for r in &mut self.ranks {
            r.clock_ns += ns;
        }
    }

    /// Closes a communication phase: drains per-rank wire time, then
    /// synchronizes all clocks to the maximum plus the barrier cost.
    ///
    /// Completion records are released here: in this BSP world a request
    /// must be waited within its phase (as the proxies do), which keeps the
    /// completion table bounded at 256 Ki-rank motif scales.
    pub fn barrier(&mut self) {
        self.completions.clear();
        let mut max = 0.0f64;
        for r in &mut self.ranks {
            r.clock_ns += self.cfg.net.wire_ns(r.phase_bytes_in)
                + if r.phase_bytes_in > 0 {
                    self.cfg.net.latency_ns
                } else {
                    0.0
                };
            r.phase_bytes_in = 0;
            max = max.max(r.clock_ns);
        }
        let after = max + self.cfg.net.barrier_ns(self.cfg.ranks);
        for r in &mut self.ranks {
            r.clock_ns = after;
        }
    }

    /// Allreduce of `bytes` per rank: synchronizes to max plus the
    /// log-tree collective cost.
    pub fn allreduce(&mut self, bytes: u64) {
        let max = self.ranks.iter().map(|r| r.clock_ns).fold(0.0, f64::max);
        let after = max + self.cfg.net.tree_collective_ns(self.cfg.ranks, bytes);
        for r in &mut self.ranks {
            r.clock_ns = after;
        }
    }

    /// Pre-loads every rank's PRQ with `n` unmatched entries (§4.1 padding).
    pub fn pad_all(&mut self, n: usize) {
        for r in &mut self.ranks {
            r.engine.pad_prq(n);
        }
    }

    /// Simulated wall time so far (max rank clock), nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock_ns).fold(0.0, f64::max)
    }

    /// Current PRQ length of `rank`.
    pub fn prq_len(&self, rank: u32) -> usize {
        self.ranks[rank as usize].engine.prq_len()
    }

    /// Current UMQ length of `rank`.
    pub fn umq_len(&self, rank: u32) -> usize {
        self.ranks[rank as usize].engine.umq_len()
    }

    /// The queue trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&QueueTrace> {
        self.trace.as_ref()
    }

    /// Merged statistics.
    pub fn stats(&self) -> WorldStats {
        let mut engine = EngineStats::new();
        let mut msgs_sent = 0;
        for r in &self.ranks {
            engine.merge(r.engine.stats());
            msgs_sent += r.msgs_sent;
        }
        WorldStats {
            engine,
            msgs_sent,
            elapsed_ns: self.elapsed_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_timed(engine: EngineKind, loc: LocalityConfig) -> SimWorld {
        SimWorld::new(WorldConfig::timed(
            4,
            engine,
            ArchProfile::test_tiny(),
            loc,
            NetProfile::test_net(),
        ))
    }

    #[test]
    fn preposted_receive_matches_on_send() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        w.post_recv(1, 0, 5, 0);
        let out = w.send(0, 1, 5, 0, 64);
        assert!(matches!(out, ArrivalOutcome::MatchedPosted { .. }));
        assert_eq!(w.prq_len(1), 0);
        let s = w.stats();
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.engine.prq_hits, 1);
        assert!(s.elapsed_ns > 0.0);
    }

    #[test]
    fn unexpected_send_then_recv() {
        let mut w = tiny_timed(EngineKind::Lla { arity: 2 }, LocalityConfig::lla(2));
        let out = w.send(2, 3, 9, 0, 8);
        assert!(matches!(out, ArrivalOutcome::Queued));
        assert_eq!(w.umq_len(3), 1);
        let out = w.post_recv(3, 2, 9, 0);
        assert!(matches!(out, RecvOutcome::MatchedUnexpected { .. }));
        assert_eq!(w.umq_len(3), 0);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        w.compute(0, 10_000.0);
        w.compute(1, 500.0);
        w.barrier();
        let t = w.elapsed_ns();
        assert!(t >= 10_000.0);
        // All ranks share the post-barrier clock: another compute on the
        // fast rank advances global time from the barrier point.
        w.compute(1, 1.0);
        assert!(w.elapsed_ns() >= t + 1.0 - 1e-9);
    }

    #[test]
    fn deeper_queues_cost_more_time() {
        let run = |pad: usize| {
            let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
            w.pad_all(pad);
            for _ in 0..32 {
                w.post_recv(1, 0, 7, 0);
                w.send(0, 1, 7, 0, 8);
            }
            w.elapsed_ns()
        };
        let shallow = run(0);
        let deep = run(512);
        assert!(deep > 2.0 * shallow, "pad 512: {deep} vs pad 0: {shallow}");
    }

    #[test]
    fn lla_world_is_faster_than_baseline_world_at_depth() {
        let run = |engine, loc| {
            let mut w = tiny_timed(engine, loc);
            w.pad_all(256);
            for _ in 0..16 {
                w.post_recv(1, 0, 7, 0);
                w.send(0, 1, 7, 0, 8);
            }
            w.elapsed_ns()
        };
        let base = run(EngineKind::Baseline, LocalityConfig::baseline());
        let lla = run(EngineKind::Lla { arity: 8 }, LocalityConfig::lla(8));
        assert!(lla < base, "LLA {lla} should beat baseline {base}");
    }

    #[test]
    fn tracing_captures_additions_and_deletions() {
        let mut w = SimWorld::new(WorldConfig::untimed(2, 5));
        w.post_recv(1, 0, 1, 0); // PRQ 0→1
        w.post_recv(1, 0, 2, 0); // PRQ 1→2
        w.send(0, 1, 1, 0, 8); // PRQ 2→1
        w.send(0, 1, 9, 0, 8); // UMQ 0→1
        let t = w.trace().unwrap();
        assert_eq!(t.posted.total(), 3);
        assert_eq!(t.unexpected.total(), 1);
    }

    #[test]
    fn irecv_test_wait_roundtrip() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        let req = w.irecv(1, 0, 5, 0);
        assert_eq!(w.test(req), None, "nothing sent yet");
        w.send(0, 1, 5, 0, 64);
        let c = w.wait(req);
        assert_eq!(c.source, 0);
        assert_eq!(c.tag, 5);
    }

    #[test]
    fn irecv_completes_immediately_on_unexpected() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        w.send(2, 1, 9, 0, 8); // arrives unexpected at rank 1
        let req = w.irecv(1, 2, 9, 0);
        assert!(w.test(req).is_some(), "message was already buffered");
    }

    #[test]
    fn waitall_collects_in_request_order() {
        let mut w = tiny_timed(EngineKind::Lla { arity: 2 }, LocalityConfig::lla(2));
        let reqs: Vec<_> = (0..4).map(|t| w.irecv(1, 0, t, 0)).collect();
        for t in (0..4).rev() {
            w.send(0, 1, t, 0, 8);
        }
        let cs = w.waitall(&reqs);
        assert_eq!(
            cs.iter().map(|c| c.tag).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    #[should_panic(expected = "MPI_Wait deadlock")]
    fn wait_without_sender_panics() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        let req = w.irecv(0, 1, 1, 0);
        w.wait(req);
    }

    #[test]
    fn barrier_releases_completions() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        let req = w.irecv(1, 0, 5, 0);
        w.send(0, 1, 5, 0, 8);
        w.barrier();
        assert_eq!(w.test(req), None, "completion records end with the phase");
    }

    #[test]
    fn allreduce_moves_all_clocks_together() {
        let mut w = tiny_timed(EngineKind::Baseline, LocalityConfig::baseline());
        w.compute(2, 5_000.0);
        w.allreduce(8);
        let t = w.elapsed_ns();
        assert!(t > 5_000.0);
        for r in 0..4 {
            w.compute(r, 0.0);
        }
        assert_eq!(w.elapsed_ns(), t);
    }
}
