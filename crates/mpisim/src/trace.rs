//! Queue-length tracing (the paper's SST instrumentation, Figure 1).

use spc_core::stats::Histogram;

/// Bucket widths for the two queue histograms. The paper uses width 20 for
/// AMR, 10 for Sweep3D and 5 for Halo3D.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Posted-receive-queue histogram bucket width.
    pub posted_width: u64,
    /// Unexpected-message-queue histogram bucket width.
    pub unexpected_width: u64,
}

impl TraceConfig {
    /// Same width for both queues.
    pub fn uniform(width: u64) -> Self {
        Self {
            posted_width: width,
            unexpected_width: width,
        }
    }
}

/// Accumulated queue-length samples: one sample per queue per addition or
/// deletion, "such that all list additions and deletions are captured".
#[derive(Clone, Debug)]
pub struct QueueTrace {
    /// PRQ length distribution.
    pub posted: Histogram,
    /// UMQ length distribution.
    pub unexpected: Histogram,
}

impl QueueTrace {
    /// Creates empty histograms with the configured widths.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            posted: Histogram::new(cfg.posted_width),
            unexpected: Histogram::new(cfg.unexpected_width),
        }
    }

    /// Records a PRQ mutation that left the queue at `len`.
    #[inline]
    pub fn sample_posted(&mut self, len: usize) {
        self.posted.record(len as u64);
    }

    /// Records a UMQ mutation that left the queue at `len`.
    #[inline]
    pub fn sample_unexpected(&mut self, len: usize) {
        self.unexpected.record(len as u64);
    }

    /// Merges another trace (same widths) into this one.
    pub fn merge(&mut self, other: &QueueTrace) {
        self.posted.merge(&other.posted);
        self.unexpected.merge(&other.unexpected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_buckets() {
        let mut t = QueueTrace::new(TraceConfig::uniform(5));
        t.sample_posted(0);
        t.sample_posted(4);
        t.sample_posted(5);
        t.sample_unexpected(12);
        assert_eq!(t.posted.count_for(0), 2);
        assert_eq!(t.posted.count_for(5), 1);
        assert_eq!(t.unexpected.count_for(12), 1);
        assert_eq!(t.posted.total(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let cfg = TraceConfig {
            posted_width: 20,
            unexpected_width: 10,
        };
        let mut a = QueueTrace::new(cfg);
        let mut b = QueueTrace::new(cfg);
        a.sample_posted(100);
        b.sample_posted(100);
        b.sample_unexpected(3);
        a.merge(&b);
        assert_eq!(a.posted.count_for(100), 2);
        assert_eq!(a.unexpected.total(), 1);
    }
}
