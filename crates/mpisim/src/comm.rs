//! Communicator management: MPI's isolation mechanism (§2.1 — "a special
//! isolation mechanism that allows a defined set of processes to send
//! messages to each other").
//!
//! Each communicator owns a distinct context id; the matching engines
//! compare it exactly, so traffic in one communicator can never match
//! receives of another — even with wildcard source *and* tag. Ranks are
//! communicator-local and translated to world ranks at the boundary, as in
//! a real MPI implementation.

use crate::world::SimWorld;
use spc_core::engine::{ArrivalOutcome, RecvOutcome};
use spc_core::entry::ANY_SOURCE;

/// Handle to a communicator in a [`CommTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CommId(usize);

struct CommMeta {
    context_id: u16,
    /// World rank of each communicator-local rank.
    members: Vec<u32>,
}

/// The job's communicators: context-id allocation, membership, and
/// rank translation. Kept separate from [`SimWorld`] so worlds that only
/// ever use `MPI_COMM_WORLD` (the motifs) pay nothing.
pub struct CommTable {
    comms: Vec<CommMeta>,
    next_context: u16,
}

impl CommTable {
    /// Creates the table with `MPI_COMM_WORLD` over `ranks` ranks
    /// (context id 0, identity rank mapping).
    pub fn new(ranks: u32) -> Self {
        Self {
            comms: vec![CommMeta {
                context_id: 0,
                members: (0..ranks).collect(),
            }],
            next_context: 1,
        }
    }

    /// The world communicator.
    pub fn world(&self) -> CommId {
        CommId(0)
    }

    /// Number of ranks in `comm`.
    pub fn size(&self, comm: CommId) -> u32 {
        self.comms[comm.0].members.len() as u32
    }

    /// Context id of `comm`.
    pub fn context_id(&self, comm: CommId) -> u16 {
        self.comms[comm.0].context_id
    }

    /// World rank of `comm`-local rank `local`.
    pub fn world_rank(&self, comm: CommId, local: u32) -> u32 {
        self.comms[comm.0].members[local as usize]
    }

    /// `comm`-local rank of `world` rank, if a member.
    pub fn local_rank(&self, comm: CommId, world: u32) -> Option<u32> {
        self.comms[comm.0]
            .members
            .iter()
            .position(|&w| w == world)
            .map(|p| p as u32)
    }

    /// Creates a communicator from an explicit member list
    /// (`MPI_Comm_create` over a group). Members are world ranks; their
    /// order defines the new local ranks.
    pub fn create(&mut self, members: Vec<u32>) -> CommId {
        assert!(
            !members.is_empty(),
            "a communicator needs at least one rank"
        );
        assert!(
            self.next_context < spc_core::dynengine::PAD_CONTEXT,
            "context ids exhausted"
        );
        let context_id = self.next_context;
        self.next_context += 1;
        self.comms.push(CommMeta {
            context_id,
            members,
        });
        CommId(self.comms.len() - 1)
    }

    /// Splits `comm` by color (`MPI_Comm_split` with key = old rank):
    /// returns the new communicators sorted by color, each containing the
    /// members with that color in old-rank order.
    pub fn split(&mut self, comm: CommId, colors: &[u32]) -> Vec<CommId> {
        assert_eq!(
            colors.len(),
            self.size(comm) as usize,
            "one color per member of the parent communicator"
        );
        let mut palette: Vec<u32> = colors.to_vec();
        palette.sort_unstable();
        palette.dedup();
        palette
            .into_iter()
            .map(|c| {
                let members: Vec<u32> = colors
                    .iter()
                    .enumerate()
                    .filter(|&(_, &col)| col == c)
                    .map(|(local, _)| self.world_rank(comm, local as u32))
                    .collect();
                self.create(members)
            })
            .collect()
    }
}

/// Communicator-aware operations over a [`SimWorld`].
///
/// A thin translation layer: local ranks and the communicator's context id
/// are resolved, then the world's plain operations run. Free functions (not
/// `SimWorld` methods) so the borrow of the table and the world stay
/// independent.
pub fn post_recv(
    world: &mut SimWorld,
    comms: &CommTable,
    comm: CommId,
    local: u32,
    src_local: i32,
    tag: i32,
) -> RecvOutcome {
    let rank = comms.world_rank(comm, local);
    let src = if src_local == ANY_SOURCE {
        ANY_SOURCE
    } else {
        comms.world_rank(comm, src_local as u32) as i32
    };
    world.post_recv(rank, src, tag, comms.context_id(comm))
}

/// Sends within a communicator (local ranks).
pub fn send(
    world: &mut SimWorld,
    comms: &CommTable,
    comm: CommId,
    src_local: u32,
    dst_local: u32,
    tag: i32,
    bytes: u64,
) -> ArrivalOutcome {
    let src = comms.world_rank(comm, src_local);
    let dst = comms.world_rank(comm, dst_local);
    world.send(src, dst, tag, comms.context_id(comm), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use spc_core::entry::ANY_TAG;

    fn world(n: u32) -> SimWorld {
        SimWorld::new(WorldConfig::untimed(n, 5))
    }

    #[test]
    fn world_comm_is_identity() {
        let t = CommTable::new(8);
        let w = t.world();
        assert_eq!(t.size(w), 8);
        assert_eq!(t.context_id(w), 0);
        assert_eq!(t.world_rank(w, 5), 5);
        assert_eq!(t.local_rank(w, 5), Some(5));
    }

    #[test]
    fn split_partitions_and_orders_members() {
        let mut t = CommTable::new(8);
        // Even/odd split.
        let colors: Vec<u32> = (0..8).map(|r| r % 2).collect();
        let subs = t.split(t.world(), &colors);
        assert_eq!(subs.len(), 2);
        let even = subs[0];
        let odd = subs[1];
        assert_eq!(t.size(even), 4);
        assert_eq!(t.world_rank(even, 2), 4);
        assert_eq!(t.world_rank(odd, 0), 1);
        assert_ne!(t.context_id(even), t.context_id(odd));
        assert_ne!(t.context_id(even), 0);
        assert_eq!(
            t.local_rank(even, 1),
            None,
            "odd world rank not in even comm"
        );
    }

    #[test]
    fn communicators_isolate_matching() {
        let mut w = world(8);
        let mut t = CommTable::new(8);
        let subs = t.split(t.world(), &(0..8).map(|r| r % 2).collect::<Vec<_>>());
        let (even, _odd) = (subs[0], subs[1]);

        // World rank 2 (= even-local 1) posts a fully wild receive on the
        // even communicator.
        post_recv(&mut w, &t, even, 1, ANY_SOURCE, ANY_TAG);
        // A message on the odd communicator to the same *world* rank can't
        // exist (rank 2 is not a member) — but a world-comm message to rank
        // 2 must not match the even-comm receive either.
        let out = w.send(0, 2, 7, 0, 64);
        assert!(
            matches!(out, ArrivalOutcome::Queued),
            "world-context message must not match an even-comm wildcard"
        );
        // The matching even-comm message does.
        let out = send(&mut w, &t, even, 0, 1, 7, 64);
        assert!(matches!(out, ArrivalOutcome::MatchedPosted { .. }));
    }

    #[test]
    fn rank_translation_routes_to_the_right_process() {
        let mut w = world(6);
        let mut t = CommTable::new(6);
        // Sub-communicator of world ranks {5, 3, 1} in that order.
        let sub = t.create(vec![5, 3, 1]);
        // sub-local 2 (= world 1) posts from sub-local 0 (= world 5).
        post_recv(&mut w, &t, sub, 2, 0, 9);
        assert_eq!(w.prq_len(1), 1, "posted on world rank 1's engine");
        let out = send(&mut w, &t, sub, 0, 2, 9, 8);
        assert!(matches!(out, ArrivalOutcome::MatchedPosted { .. }));
        assert_eq!(w.prq_len(1), 0);
    }

    #[test]
    fn context_ids_are_unique_and_bounded() {
        let mut t = CommTable::new(4);
        let mut seen = std::collections::HashSet::new();
        seen.insert(0u16);
        for _ in 0..100 {
            let c = t.create(vec![0, 1]);
            assert!(seen.insert(t.context_id(c)), "context id reused");
        }
    }

    #[test]
    #[should_panic(expected = "one color per member")]
    fn split_requires_full_coloring() {
        let mut t = CommTable::new(4);
        t.split(t.world(), &[0, 1]);
    }
}
