//! # spc-mpisim — deterministic rank-level MPI simulator
//!
//! Simulates a job of MPI ranks, each owning a *real* [`spc_core`] matching
//! engine, with per-rank clocks advanced by a calibrated cost model:
//!
//! * matching costs come from [`spc_cachesim::CostModel`] (the cache
//!   simulator, memoized per search depth);
//! * transfer and collective costs come from [`spc_simnet::NetProfile`];
//! * compute phases are charged explicitly by the workload.
//!
//! The programming model is bulk-synchronous and caller-driven: workloads
//! (motifs in `spc-motifs`, proxy apps in `spc-miniapps`) issue
//! `post_recv`/`send`/`compute` operations in a deterministic order and
//! close phases with `barrier`/`allreduce`. Queue-length tracing (Figure 1)
//! samples both queues at every addition and deletion, exactly as the
//! paper's SST instrumentation does.

#![warn(missing_docs)]

pub mod comm;
pub mod trace;
pub mod world;

pub use comm::{CommId, CommTable};
pub use trace::{QueueTrace, TraceConfig};
pub use world::{Completion, Request, SimWorld, WorldConfig, WorldStats};
