//! AMR: adaptive-mesh-refinement communication motif (Figure 1a).
//!
//! Refinement makes neighbour counts wildly non-uniform: most ranks talk to
//! a handful of same-level neighbours, while ranks on refinement boundaries
//! exchange with many fine blocks. The motif draws per-rank degrees from a
//! truncated power law and wires ranks together with a configuration-model
//! multigraph, regenerating the graph at each regrid. The resulting
//! match-list length distribution has the paper's shape: mass concentrated
//! at small-to-mid lengths, a thinning tail out to the mid-400s.

use spc_rng::SliceRandom;
use spc_rng::{Rng, SeedableRng};

use spc_mpisim::{QueueTrace, SimWorld, TraceConfig, WorldConfig};

/// AMR motif parameters.
#[derive(Clone, Copy, Debug)]
pub struct AmrParams {
    /// Number of ranks.
    pub ranks: u32,
    /// Communication iterations.
    pub iterations: u32,
    /// Regenerate the refinement graph every this many iterations.
    pub regrid_interval: u32,
    /// Minimum neighbour-message degree (uniform base exchange).
    pub min_degree: u32,
    /// Maximum degree (deeply refined boundary ranks).
    pub max_degree: u32,
    /// Power-law exponent of the degree distribution (larger = thinner
    /// tail).
    pub alpha: f64,
    /// Message payload bytes.
    pub bytes: u64,
    /// RNG seed.
    pub seed: u64,
    /// Histogram bucket width (the paper uses 20 for AMR).
    pub trace_width: u64,
}

impl AmrParams {
    /// The paper's scale: 64 Ki ranks, lengths out to the mid-400s.
    pub fn paper_scale() -> Self {
        Self {
            ranks: 64 * 1024,
            iterations: 12,
            regrid_interval: 4,
            min_degree: 6,
            max_degree: 440,
            alpha: 2.4,
            bytes: 4096,
            seed: 0xA317,
            trace_width: 20,
        }
    }

    /// Laptop-scale configuration with the same shape.
    pub fn small() -> Self {
        Self {
            ranks: 512,
            iterations: 6,
            ..Self::paper_scale()
        }
    }
}

/// Draws a degree from the truncated power law `P(d) ∝ d^-alpha` on
/// `[min, max]` by inverse-CDF sampling.
fn draw_degree(rng: &mut impl Rng, min: u32, max: u32, alpha: f64) -> u32 {
    let (a, b) = (min as f64, max as f64 + 1.0);
    let e = 1.0 - alpha;
    let u: f64 = rng.gen();
    // Inverse CDF of the continuous truncated power law.
    let d = (u * (b.powf(e) - a.powf(e)) + a.powf(e)).powf(1.0 / e);
    (d as u32).clamp(min, max)
}

/// Builds a configuration-model multigraph: each rank gets `deg[r]`
/// half-edges, which are shuffled and paired. Self-loops are dropped.
fn build_edges(degrees: &[u32], rng: &mut impl Rng) -> Vec<(u32, u32)> {
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().map(|&d| d as usize).sum());
    for (r, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(r as u32, d as usize));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    stubs.shuffle(rng);
    stubs
        .chunks_exact(2)
        .filter(|c| c[0] != c[1])
        .map(|c| (c[0], c[1]))
        .collect()
}

/// Runs the motif and returns the queue trace.
pub fn run(p: AmrParams) -> QueueTrace {
    let mut world = SimWorld::new(WorldConfig {
        trace: Some(TraceConfig::uniform(p.trace_width)),
        ..WorldConfig::untimed(p.ranks, p.trace_width)
    });
    let mut rng = spc_rng::StdRng::seed_from_u64(p.seed);
    let mut adjacency: Vec<Vec<(u32, u32)>> = Vec::new(); // (peer, edge id)
    let mut order: Vec<u32> = (0..p.ranks).collect();

    for iter in 0..p.iterations {
        if iter % p.regrid_interval == 0 || adjacency.is_empty() {
            // Regrid: refinement levels changed; redraw the exchange graph.
            let degrees: Vec<u32> = (0..p.ranks)
                .map(|_| draw_degree(&mut rng, p.min_degree, p.max_degree, p.alpha))
                .collect();
            let edges = build_edges(&degrees, &mut rng);
            adjacency = vec![Vec::new(); p.ranks as usize];
            for (eid, &(a, b)) in edges.iter().enumerate() {
                adjacency[a as usize].push((b, eid as u32));
                adjacency[b as usize].push((a, eid as u32));
            }
        }
        order.shuffle(&mut rng);
        for &rank in &order {
            for &(peer, eid) in &adjacency[rank as usize] {
                world.post_recv(rank, peer as i32, eid as i32, 0);
            }
            for &(peer, eid) in &adjacency[rank as usize] {
                world.send(rank, peer, eid as i32, 0, p.bytes);
            }
        }
        world.barrier();
    }
    world.trace().expect("tracing enabled").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_rng::StdRng;

    #[test]
    fn degree_distribution_spans_and_decays() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3]; // small / medium / large
        for _ in 0..20_000 {
            let d = draw_degree(&mut rng, 6, 440, 2.4);
            assert!((6..=440).contains(&d));
            match d {
                0..=20 => counts[0] += 1,
                21..=100 => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        assert!(counts[2] > 0, "the tail must be reachable");
    }

    #[test]
    fn configuration_model_respects_degree_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let degrees = vec![3, 1, 2, 2];
        let edges = build_edges(&degrees, &mut rng);
        assert!(edges.len() <= 4);
        let mut got = [0u32; 4];
        for &(a, b) in &edges {
            got[a as usize] += 1;
            got[b as usize] += 1;
        }
        for (g, d) in got.iter().zip(&degrees) {
            assert!(g <= d);
        }
    }

    #[test]
    fn motif_produces_tail_beyond_base_degree() {
        let trace = run(AmrParams::small());
        assert!(trace.posted.total() > 0);
        // The tail extends well past the uniform base exchange.
        assert!(
            trace.posted.max_bucket_hi() > 100,
            "tail reaches only {}",
            trace.posted.max_bucket_hi()
        );
        // ...but the mass is at small lengths (Figure 1a's decay).
        let low: u64 = trace.posted.buckets().take(3).map(|(_, _, c)| c).sum();
        assert!(low * 2 > trace.posted.total());
    }

    #[test]
    fn queues_return_to_empty_each_iteration() {
        let trace = run(AmrParams {
            ranks: 128,
            iterations: 2,
            ..AmrParams::small()
        });
        assert!(trace.posted.count_for(0) > 0);
    }

    #[test]
    fn deterministic_for_seed_and_sensitive_to_it() {
        let a = run(AmrParams {
            ranks: 128,
            iterations: 2,
            ..AmrParams::small()
        });
        let b = run(AmrParams {
            ranks: 128,
            iterations: 2,
            ..AmrParams::small()
        });
        assert_eq!(
            a.posted.buckets().collect::<Vec<_>>(),
            b.posted.buckets().collect::<Vec<_>>()
        );
        let c = run(AmrParams {
            ranks: 128,
            iterations: 2,
            seed: 9,
            ..AmrParams::small()
        });
        assert_ne!(
            a.posted.buckets().collect::<Vec<_>>(),
            c.posted.buckets().collect::<Vec<_>>()
        );
    }
}
