//! The multithreaded-decomposition benchmark behind Table 1 (§2.3).
//!
//! A receiving MPI process is decomposed into a 2-D or 3-D grid of threads;
//! each thread posts receives for every stencil neighbour that lives in a
//! *different* process. A second multithreaded process proxies all the
//! senders, so every message arrives from MPI rank 1 and is distinguished by
//! tag. Threads enter the communication phase concurrently, so both the
//! posting order and the arrival order are scheduler-dependent — modelled
//! here as seeded shuffles (and corroborated by [`analyze_threaded`], which
//! uses real OS threads and lock contention).
//!
//! Two real-threads engine designs are compared:
//! [`analyze_threaded_shared`] funnels every thread through the
//! traditional single engine lock, while [`analyze_threaded_sharded`]
//! drives the source-sharded [`spc_core::shard::ShardedEngine`] with
//! per-sender source ranks — quantifying how much contention (and search
//! depth) source decomposition removes. Both report per-shard
//! [`spc_core::stats::ConcurrencyStats`].
//!
//! `tr`, `ts` and the list length are *exact* combinatorial quantities of
//! the decomposition and stencil; the mean search depth is the stochastic
//! quantity the benchmark measures (averaged over trials, as the paper
//! averages over 10).

use spc_rng::SeedableRng;
use spc_rng::SliceRandom;

use spc_core::concurrent::SharedEngine;
use spc_core::engine::{ArrivalOutcome, MatchEngine};
use spc_core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry};
use spc_core::list::{BaselineList, MatchList};
use spc_core::shard::ShardedEngine;
use spc_core::stats::{ConcurrencyStats, DepthStats, LockStats};
use spc_core::NullSink;

/// Stencil shapes from Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stencil {
    /// 2-D 5-point (von Neumann).
    S5,
    /// 2-D 9-point (Moore).
    S9,
    /// 3-D 7-point (faces).
    S7,
    /// 3-D 27-point (faces + edges + corners).
    S27,
}

impl Stencil {
    /// Neighbour offsets of this stencil (excluding the centre).
    pub fn offsets(&self) -> Vec<[i64; 3]> {
        let mut out = Vec::new();
        match self {
            Stencil::S5 => {
                for (dx, dy) in [(-1, 0), (1, 0), (0, -1), (0, 1)] {
                    out.push([dx, dy, 0]);
                }
            }
            Stencil::S9 => {
                for dx in -1..=1i64 {
                    for dy in -1..=1i64 {
                        if (dx, dy) != (0, 0) {
                            out.push([dx, dy, 0]);
                        }
                    }
                }
            }
            Stencil::S7 => {
                for d in [
                    [-1, 0, 0],
                    [1, 0, 0],
                    [0, -1, 0],
                    [0, 1, 0],
                    [0, 0, -1],
                    [0, 0, 1],
                ] {
                    out.push(d);
                }
            }
            Stencil::S27 => {
                for dx in -1..=1i64 {
                    for dy in -1..=1i64 {
                        for dz in -1..=1i64 {
                            if (dx, dy, dz) != (0, 0, 0) {
                                out.push([dx, dy, dz]);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Short name as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            Stencil::S5 => "5pt",
            Stencil::S9 => "9pt",
            Stencil::S7 => "7pt",
            Stencil::S27 => "27pt",
        }
    }
}

/// One benchmark configuration: thread grid + stencil.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decomp {
    /// Thread-grid extents (use `[x, y, 1]` for 2-D decompositions).
    pub dims: [u64; 3],
    /// Stencil shape.
    pub stencil: Stencil,
}

impl Decomp {
    /// Formats the decomposition as in Table 1 ("32 x 32", "8 x 8 x 4").
    pub fn label(&self) -> String {
        let [x, y, z] = self.dims;
        if z == 1 && matches!(self.stencil, Stencil::S5 | Stencil::S9) {
            format!("{x} x {y}")
        } else {
            format!("{x} x {y} x {z}")
        }
    }

    fn in_grid(&self, p: [i64; 3]) -> bool {
        (0..3).all(|i| p[i] >= 0 && (p[i] as u64) < self.dims[i])
    }

    /// Enumerates every off-process message as
    /// `(receiving thread, process offset, sending thread coordinate)`.
    ///
    /// A neighbour at an off-grid coordinate lives in the adjacent process
    /// whose offset is the per-axis sign of the overflow; the sending thread
    /// is the coordinate wrapped back into the grid.
    fn cross_messages(&self) -> Vec<([u64; 3], [i64; 3], [u64; 3])> {
        let mut msgs = Vec::new();
        let dims = self.dims.map(|d| d as i64);
        for x in 0..dims[0] {
            for y in 0..dims[1] {
                for z in 0..dims[2] {
                    for off in self.stencil.offsets() {
                        let n = [x + off[0], y + off[1], z + off[2]];
                        if self.in_grid(n) {
                            continue;
                        }
                        let mut proc = [0i64; 3];
                        let mut src = [0u64; 3];
                        for i in 0..3 {
                            if n[i] < 0 {
                                proc[i] = -1;
                                src[i] = (n[i] + dims[i]) as u64;
                            } else if n[i] >= dims[i] {
                                proc[i] = 1;
                                src[i] = (n[i] - dims[i]) as u64;
                            } else {
                                src[i] = n[i] as u64;
                            }
                        }
                        msgs.push(([x as u64, y as u64, z as u64], proc, src));
                    }
                }
            }
        }
        msgs
    }
}

/// The Table 1 measurements for one decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecompResult {
    /// Threads posting receives (`tr`): threads with ≥1 off-process
    /// neighbour.
    pub tr: u64,
    /// Sending threads (`ts`): distinct (neighbour process, thread) pairs.
    pub ts: u64,
    /// Match-list length: total off-process receives posted.
    pub length: u64,
    /// Mean search depth over all matches and trials.
    pub mean_search_depth: f64,
}

/// Computes tr/ts/length exactly and the mean search depth by simulating
/// `trials` scheduler interleavings with seeds derived from `seed`.
pub fn analyze(decomp: Decomp, trials: u32, seed: u64) -> DecompResult {
    let msgs = decomp.cross_messages();
    let length = msgs.len() as u64;

    let mut receivers: Vec<[u64; 3]> = msgs.iter().map(|(r, ..)| *r).collect();
    receivers.sort_unstable();
    receivers.dedup();
    let tr = receivers.len() as u64;

    let mut senders: Vec<([i64; 3], [u64; 3])> = msgs.iter().map(|(_, p, s)| (*p, *s)).collect();
    senders.sort_unstable();
    senders.dedup();
    let ts = senders.len() as u64;

    let mut depths = DepthStats::new();
    for trial in 0..trials {
        run_shuffled_trial(&msgs, decomp, seed ^ (trial as u64 + 1), &mut depths);
    }
    DecompResult {
        tr,
        ts,
        length,
        mean_search_depth: depths.mean(),
    }
}

/// One trial: receives are appended in a random interleaving of per-thread
/// posting order; arrivals occur in a random interleaving of per-sender
/// issue order. Tags uniquely identify each message, as the proxy-sender
/// benchmark does.
fn run_shuffled_trial(
    msgs: &[([u64; 3], [i64; 3], [u64; 3])],
    decomp: Decomp,
    seed: u64,
    depths: &mut DepthStats,
) {
    let mut rng = spc_rng::StdRng::seed_from_u64(seed);
    // Posting order: threads enter the phase concurrently; each thread posts
    // its own receives in order, but the interleaving across threads is
    // scheduler-chosen. A global shuffle of messages keyed by receiving
    // thread approximates the interleaving; because each thread's receives
    // are for distinct tags, intra-thread order does not affect depths.
    let mut post_order: Vec<usize> = (0..msgs.len()).collect();
    post_order.shuffle(&mut rng);
    let mut arrive_order: Vec<usize> = (0..msgs.len()).collect();
    arrive_order.shuffle(&mut rng);

    let mut list = BaselineList::new();
    let mut sink = NullSink;
    let _ = decomp;
    for &m in &post_order {
        // All messages come from the proxy sender (rank 1); the tag is the
        // unique message id.
        list.append(
            spc_core::entry::PostedEntry::from_spec(RecvSpec::new(1, m as i32, 0), m as u64),
            &mut sink,
        );
    }
    for &m in &arrive_order {
        let r = list.search_remove(&Envelope::new(1, m as i32, 0), &mut sink);
        debug_assert!(r.found.is_some());
        depths.record(r.depth as u64);
    }
    debug_assert!(list.is_empty());
}

/// The ten configurations of Table 1, in row order.
pub fn table1_rows() -> Vec<Decomp> {
    vec![
        Decomp {
            dims: [32, 32, 1],
            stencil: Stencil::S5,
        },
        Decomp {
            dims: [64, 32, 1],
            stencil: Stencil::S5,
        },
        Decomp {
            dims: [32, 32, 1],
            stencil: Stencil::S9,
        },
        Decomp {
            dims: [64, 32, 1],
            stencil: Stencil::S9,
        },
        Decomp {
            dims: [8, 8, 4],
            stencil: Stencil::S7,
        },
        Decomp {
            dims: [1, 1, 128],
            stencil: Stencil::S7,
        },
        Decomp {
            dims: [1, 1, 256],
            stencil: Stencil::S7,
        },
        Decomp {
            dims: [8, 8, 4],
            stencil: Stencil::S27,
        },
        Decomp {
            dims: [1, 1, 128],
            stencil: Stencil::S27,
        },
        Decomp {
            dims: [1, 1, 256],
            stencil: Stencil::S27,
        },
    ]
}

/// Depth plus lock observability from one real-threads decomposition run.
#[derive(Clone, Debug)]
pub struct ThreadedResult {
    /// Mean search depth over all matched arrivals.
    pub mean_search_depth: f64,
    /// Aggregate acquisition/contention counters over every lock the
    /// engine owns (the single engine lock, or all shard locks plus the
    /// wildcard lane).
    pub lock: LockStats,
    /// Per-shard breakdown — a single synthetic shard for the shared
    /// engine, `S` shards plus the wildcard lane for the sharded one.
    pub concurrency: ConcurrencyStats,
}

/// How messages are attributed to MPI source ranks in the threaded runs.
#[derive(Clone, Copy)]
enum SourceScheme {
    /// Every message arrives from one proxy sender (rank 1), as in the
    /// paper's benchmark; tags alone distinguish messages. Worst case for
    /// source-decomposed structures *and* for a source-sharded engine.
    Proxy,
    /// Each sending thread stamps its own source rank — the layout MPI
    /// point-to-point traffic actually has, and the one a source-sharded
    /// engine is designed to spread across its shards.
    PerSender,
}

/// Minimal thread-safe engine surface the real-threads driver needs.
trait ThreadedEngine: Sync {
    fn post(&self, spec: RecvSpec, request: u64);
    fn arrive(&self, env: Envelope, payload: u64) -> ArrivalOutcome;
}

impl ThreadedEngine for SharedEngine<BaselineList<PostedEntry>, BaselineList<UnexpectedEntry>> {
    fn post(&self, spec: RecvSpec, request: u64) {
        let _ = self.post_recv(spec, request);
    }
    fn arrive(&self, env: Envelope, payload: u64) -> ArrivalOutcome {
        self.arrival(env, payload)
    }
}

impl ThreadedEngine for ShardedEngine<BaselineList<PostedEntry>, BaselineList<UnexpectedEntry>> {
    fn post(&self, spec: RecvSpec, request: u64) {
        let _ = self.post_recv(spec, request);
    }
    fn arrive(&self, env: Envelope, payload: u64) -> ArrivalOutcome {
        self.arrival(env, payload)
    }
}

/// `tr` poster threads and `ts` sender threads race on `eng`, exactly as a
/// multithreaded MPI implementation's match engine is driven. Senders wait
/// until all receives are pre-posted (the benchmark preposts via a
/// barrier), then race each other.
fn run_real_threads<E: ThreadedEngine>(
    decomp: Decomp,
    seed: u64,
    scheme: SourceScheme,
    eng: &E,
) -> DepthStats {
    let msgs = decomp.cross_messages();
    // Group messages by receiving thread and by sending thread.
    let mut by_receiver: std::collections::BTreeMap<[u64; 3], Vec<usize>> = Default::default();
    let mut by_sender: std::collections::BTreeMap<([i64; 3], [u64; 3]), Vec<usize>> =
        Default::default();
    for (m, (r, p, s)) in msgs.iter().enumerate() {
        by_receiver.entry(*r).or_default().push(m);
        by_sender.entry((*p, *s)).or_default().push(m);
    }
    let total = msgs.len();

    // Source rank of each message: the proxy rank, or the sending thread's
    // index. Tags are globally unique either way, so matching is exact.
    let mut rank_of = vec![1i32; total];
    if let SourceScheme::PerSender = scheme {
        for (si, (_, mine)) in by_sender.iter().enumerate() {
            for &m in mine {
                rank_of[m] = si as i32;
            }
        }
    }
    let rank_of = &rank_of;

    let posted = std::sync::atomic::AtomicUsize::new(0);
    let depths = std::sync::Mutex::new(DepthStats::new());

    std::thread::scope(|scope| {
        for (ti, (_, mine)) in by_receiver.iter().enumerate() {
            let posted = &posted;
            scope.spawn(move || {
                // Jitter thread start like a real scheduler would.
                if (seed ^ ti as u64).is_multiple_of(3) {
                    std::thread::yield_now();
                }
                for &m in mine {
                    eng.post(RecvSpec::new(rank_of[m], m as i32, 0), m as u64);
                    posted.fetch_add(1, std::sync::atomic::Ordering::Release);
                }
            });
        }
        for (si, (_, mine)) in by_sender.iter().enumerate() {
            let posted = &posted;
            let depths = &depths;
            scope.spawn(move || {
                while posted.load(std::sync::atomic::Ordering::Acquire) < total {
                    std::thread::yield_now();
                }
                if (seed ^ si as u64).is_multiple_of(2) {
                    std::thread::yield_now();
                }
                for &m in mine {
                    match eng.arrive(Envelope::new(rank_of[m], m as i32, 0), m as u64) {
                        ArrivalOutcome::MatchedPosted { depth, .. } => {
                            depths.lock().unwrap().record(depth as u64);
                        }
                        other => panic!("pre-posted receive missing: {other:?}"),
                    }
                }
            });
        }
    });
    let d = depths.into_inner().expect("depth stats lock poisoned");
    assert_eq!(d.count, total as u64);
    d
}

/// Real-threads corroboration on the single-lock [`SharedEngine`] with the
/// paper's proxy-sender traffic. Returns the mean search depth; see
/// [`analyze_threaded_shared`] for the lock observability.
pub fn analyze_threaded(decomp: Decomp, seed: u64) -> f64 {
    analyze_threaded_shared(decomp, seed).mean_search_depth
}

/// Real-threads run through the single-lock [`SharedEngine`] (the
/// traditional one-match-engine-per-process design): every poster and
/// sender thread funnels through one mutex.
pub fn analyze_threaded_shared(decomp: Decomp, seed: u64) -> ThreadedResult {
    let eng: SharedEngine<BaselineList<PostedEntry>, BaselineList<UnexpectedEntry>> =
        SharedEngine::new(MatchEngine::new(BaselineList::new(), BaselineList::new()));
    let depths = run_real_threads(decomp, seed, SourceScheme::Proxy, &eng);
    ThreadedResult {
        mean_search_depth: depths.mean(),
        lock: eng.lock_stats(),
        concurrency: eng.concurrency_stats(),
    }
}

/// Real-threads run through the source-sharded [`ShardedEngine`] with
/// per-sender source ranks, so traffic actually spreads across the
/// `shards` independently-locked sub-engines (under the proxy-rank scheme
/// every message would hash to one shard and the comparison would be
/// meaningless). Search depths are shard-local, so they shrink alongside
/// the contention.
pub fn analyze_threaded_sharded(decomp: Decomp, shards: usize, seed: u64) -> ThreadedResult {
    let eng: ShardedEngine<BaselineList<PostedEntry>, BaselineList<UnexpectedEntry>> =
        ShardedEngine::new(shards, BaselineList::new, BaselineList::new);
    let depths = run_real_threads(decomp, seed, SourceScheme::PerSender, &eng);
    let stats = eng.stats();
    ThreadedResult {
        mean_search_depth: depths.mean(),
        lock: eng.lock_stats(),
        concurrency: stats
            .concurrency
            .expect("sharded engine reports concurrency"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(dims: [u64; 3], stencil: Stencil) -> DecompResult {
        analyze(Decomp { dims, stencil }, 3, 42)
    }

    #[test]
    fn table1_2d_counts_are_exact() {
        // Paper Table 1, 2-D rows: (tr, ts, length).
        let r = row([32, 32, 1], Stencil::S5);
        assert_eq!((r.tr, r.ts, r.length), (124, 128, 128));
        let r = row([64, 32, 1], Stencil::S5);
        assert_eq!((r.tr, r.ts, r.length), (188, 192, 192));
        let r = row([32, 32, 1], Stencil::S9);
        assert_eq!((r.tr, r.ts, r.length), (124, 132, 380));
        let r = row([64, 32, 1], Stencil::S9);
        assert_eq!((r.tr, r.ts, r.length), (188, 196, 572));
    }

    #[test]
    fn table1_3d_counts_are_exact() {
        let r = row([8, 8, 4], Stencil::S7);
        assert_eq!((r.tr, r.ts, r.length), (184, 256, 256));
        let r = row([1, 1, 128], Stencil::S7);
        assert_eq!((r.tr, r.ts, r.length), (128, 514, 514));
        let r = row([1, 1, 256], Stencil::S7);
        assert_eq!((r.tr, r.ts, r.length), (256, 1026, 1026));
        let r = row([8, 8, 4], Stencil::S27);
        assert_eq!((r.tr, r.ts, r.length), (184, 344, 2072));
        let r = row([1, 1, 128], Stencil::S27);
        assert_eq!((r.tr, r.ts, r.length), (128, 1042, 3074));
        let r = row([1, 1, 256], Stencil::S27);
        assert_eq!((r.tr, r.ts, r.length), (256, 2066, 6146));
    }

    #[test]
    fn search_depth_is_near_a_quarter_of_length() {
        // With both orders random, the expected normalized depth sits near
        // 1/4 — which is what every Table 1 row shows (0.19–0.26 × length).
        for dims in [[32, 32, 1], [8, 8, 4]] {
            let stencil = if dims[2] == 1 {
                Stencil::S9
            } else {
                Stencil::S27
            };
            let r = analyze(Decomp { dims, stencil }, 10, 7);
            let ratio = r.mean_search_depth / r.length as f64;
            assert!(
                (0.15..0.35).contains(&ratio),
                "{dims:?}: depth {:.1} / length {} = {ratio:.3}",
                r.mean_search_depth,
                r.length
            );
        }
    }

    #[test]
    fn depth_is_deterministic_for_a_seed() {
        let d = Decomp {
            dims: [16, 16, 1],
            stencil: Stencil::S5,
        };
        let a = analyze(d, 5, 99);
        let b = analyze(d, 5, 99);
        assert_eq!(a, b);
        let c = analyze(d, 5, 100);
        assert_ne!(a.mean_search_depth, c.mean_search_depth);
    }

    #[test]
    fn labels_match_table_style() {
        assert_eq!(
            Decomp {
                dims: [32, 32, 1],
                stencil: Stencil::S5
            }
            .label(),
            "32 x 32"
        );
        assert_eq!(
            Decomp {
                dims: [8, 8, 4],
                stencil: Stencil::S27
            }
            .label(),
            "8 x 8 x 4"
        );
        assert_eq!(Stencil::S27.label(), "27pt");
        assert_eq!(table1_rows().len(), 10);
    }

    #[test]
    fn threaded_mode_agrees_on_magnitude() {
        // Small decomposition so the test stays fast: real threads should
        // land in the same normalized-depth band as the shuffle model.
        let d = Decomp {
            dims: [8, 8, 1],
            stencil: Stencil::S9,
        };
        let exact = analyze(d, 10, 3);
        let threaded = analyze_threaded(d, 3);
        let ratio = threaded / exact.length as f64;
        assert!(
            (0.05..0.6).contains(&ratio),
            "threaded depth {threaded:.1} of length {}",
            exact.length
        );
    }

    #[test]
    fn sharded_threaded_mode_matches_every_message() {
        let d = Decomp {
            dims: [8, 8, 1],
            stencil: Stencil::S9,
        };
        let r = analyze_threaded_sharded(d, 8, 5);
        // Every arrival matched a pre-posted receive (the driver asserts
        // the count); a hit inspects at least one entry.
        assert!(r.mean_search_depth >= 1.0);
        assert_eq!(r.concurrency.shards.len(), 8);
        // Per-sender ranks cover every shard: each shard saw workload ops.
        for (i, s) in r.concurrency.shards.iter().enumerate() {
            assert!(s.lock.acquisitions > 0, "shard {i} never acquired");
            assert!(s.max_prq_len > 0, "shard {i} never held a receive");
        }
        // No wildcards in the decomposition traffic: the wild lane exists
        // but is never crossed.
        let wild = r.concurrency.wild.as_ref().expect("wild lane reported");
        assert_eq!(wild.lock.acquisitions, 0);
        assert_eq!(r.concurrency.wild_crossings, 0);
        assert_eq!(
            r.lock.acquisitions,
            r.concurrency.total_lock().acquisitions,
            "aggregate equals the per-shard sum"
        );
    }

    #[test]
    fn sharded_threaded_mode_agrees_on_magnitude() {
        // Shard-local searches inspect only that shard's sub-list, so the
        // sharded depth must sit well below the global-length band the
        // single-engine modes occupy — but stay a real (≥1) search.
        let d = Decomp {
            dims: [8, 8, 1],
            stencil: Stencil::S9,
        };
        let exact = analyze(d, 10, 3);
        let r = analyze_threaded_sharded(d, 8, 3);
        let ratio = r.mean_search_depth / exact.length as f64;
        assert!(
            ratio > 0.0 && ratio < 0.6,
            "sharded depth {:.1} of length {}",
            r.mean_search_depth,
            exact.length
        );
        let max_shard_prq = r
            .concurrency
            .shards
            .iter()
            .map(|s| s.max_prq_len)
            .max()
            .unwrap();
        assert!(
            r.mean_search_depth <= max_shard_prq as f64,
            "depth {:.1} cannot exceed the deepest shard ({max_shard_prq})",
            r.mean_search_depth
        );
    }

    #[test]
    fn sharding_cuts_contention_versus_the_single_lock() {
        // The headline §2.3 claim made concrete: the same decomposition
        // driven through one lock vs eight shard locks. Summed over a few
        // seeds to smooth scheduler noise.
        let d = Decomp {
            dims: [16, 16, 1],
            stencil: Stencil::S9,
        };
        let mut shared_contended = 0;
        let mut sharded_contended = 0;
        for seed in [11, 12, 13] {
            shared_contended += analyze_threaded_shared(d, seed).lock.contended;
            sharded_contended += analyze_threaded_sharded(d, 8, seed).lock.contended;
        }
        // On a single hardware thread the scheduler may serialize everything
        // and neither engine contends; the comparison only means something
        // when the single lock was actually fought over.
        if shared_contended < 16 {
            return;
        }
        assert!(
            sharded_contended < shared_contended,
            "sharded {sharded_contended} must contend less than shared {shared_contended}"
        );
    }

    #[test]
    fn shared_threaded_mode_reports_lock_stats() {
        let d = Decomp {
            dims: [8, 8, 1],
            stencil: Stencil::S9,
        };
        let exact = analyze(d, 1, 9);
        let r = analyze_threaded_shared(d, 9);
        // One post + one arrival per message, all through the counted lock.
        assert_eq!(r.lock.acquisitions, 2 * exact.length);
        assert_eq!(r.concurrency.shards.len(), 1);
        assert!(r.concurrency.wild.is_none());
        assert_eq!(r.concurrency.shards[0].max_prq_len, exact.length);
        assert!(r.lock.contention_ratio() <= 1.0);
    }

    #[test]
    fn thread_counts_cover_whole_grid_for_pencils() {
        // Every thread of a 1×1×N pencil posts (all have off-grid x/y
        // neighbours under 7pt).
        let r = row([1, 1, 16], Stencil::S7);
        assert_eq!(r.tr, 16);
        assert_eq!(r.length, 16 * 4 + 2);
    }
}
