//! # spc-motifs — communication-pattern motifs and the decomposition
//! benchmark
//!
//! Reproduces the workload side of the paper's motivation study (§2.3):
//!
//! * [`amr`], [`sweep3d`], [`halo3d`] — SST-style communication motifs
//!   whose queue-length traces regenerate Figure 1 (a–c);
//! * [`decomp`] — the multithreaded 2-D/3-D decomposition benchmark behind
//!   Table 1, with exact combinatorial `tr`/`ts`/length and simulated (plus
//!   real-threads) search depths.

#![warn(missing_docs)]

pub mod amr;
pub mod decomp;
pub mod halo3d;
pub mod sweep3d;

pub use decomp::{
    analyze, analyze_threaded, analyze_threaded_sharded, analyze_threaded_shared, table1_rows,
    Decomp, DecompResult, Stencil, ThreadedResult,
};
