//! Sweep3D: KBA wavefront sweep motif (Figure 1b).
//!
//! A 3-D transport sweep decomposed over a 2-D process grid: for each of the
//! eight octants, a wavefront moves diagonally across the grid, each rank
//! receiving per-z-block messages from its two upstream neighbours and
//! forwarding downstream. Interior ranks post receives just-in-time (their
//! queues stay very short — the bulk of Figure 1b's samples at 0–9), while
//! ranks on the sweep's inflow boundaries pre-post entire octant windows,
//! producing the thinning tail out to ~100.

use spc_rng::SeedableRng;
use spc_rng::SliceRandom;

use spc_mpisim::{QueueTrace, SimWorld, TraceConfig, WorldConfig};

/// Sweep3D motif parameters.
#[derive(Clone, Copy, Debug)]
pub struct Sweep3dParams {
    /// Process grid (the KBA decomposition is 2-D).
    pub grid: [u32; 2],
    /// Number of z-blocks pipelined per octant.
    pub blocks: u32,
    /// Octants swept per iteration (the full sweep is 8).
    pub octants: u32,
    /// How many octants' windows may overlap in flight.
    pub overlap: u32,
    /// Sweep iterations.
    pub iterations: u32,
    /// Message payload bytes.
    pub bytes: u64,
    /// RNG seed (posting jitter).
    pub seed: u64,
    /// Histogram bucket width (the paper uses 10 for Sweep3D).
    pub trace_width: u64,
}

impl Sweep3dParams {
    /// The paper's scale: 128 Ki ranks (512×256).
    pub fn paper_scale() -> Self {
        Self {
            grid: [512, 256],
            blocks: 48,
            octants: 8,
            overlap: 2,
            iterations: 2,
            bytes: 2048,
            seed: 0x53D3,
            trace_width: 10,
        }
    }

    /// Laptop-scale configuration with the same shape.
    pub fn small() -> Self {
        Self {
            grid: [16, 8],
            iterations: 2,
            ..Self::paper_scale()
        }
    }

    /// Total ranks.
    pub fn ranks(&self) -> u32 {
        self.grid[0] * self.grid[1]
    }
}

/// The four sweep directions of the 2-D KBA grid (each covers two octants,
/// ±z being pipelined through the same wavefront).
const DIRS: [[i64; 2]; 4] = [[1, 1], [-1, 1], [1, -1], [-1, -1]];

fn rank_of(grid: [u32; 2], x: i64, y: i64) -> Option<u32> {
    if x < 0 || y < 0 || x >= grid[0] as i64 || y >= grid[1] as i64 {
        return None;
    }
    Some(y as u32 * grid[0] + x as u32)
}

/// A rank is on an octant's inflow boundary when at least one of its
/// upstream neighbours falls outside the grid.
fn on_inflow_boundary(grid: [u32; 2], dir: [i64; 2], x: i64, y: i64) -> bool {
    rank_of(grid, x - dir[0], y).is_none() || rank_of(grid, x, y - dir[1]).is_none()
}

/// Runs the motif and returns the queue trace.
pub fn run(p: Sweep3dParams) -> QueueTrace {
    let mut world = SimWorld::new(WorldConfig {
        trace: Some(TraceConfig::uniform(p.trace_width)),
        ..WorldConfig::untimed(p.ranks(), p.trace_width)
    });
    let mut rng = spc_rng::StdRng::seed_from_u64(p.seed);
    let (px, py) = (p.grid[0] as i64, p.grid[1] as i64);

    for _iter in 0..p.iterations {
        let mut oct = 0;
        while oct < p.octants {
            let group_end = (oct + p.overlap).min(p.octants);
            // Phase 1: pre-post. Inflow-boundary ranks post their whole
            // octant window; interior ranks post a short just-in-time
            // window (the rest are posted as the wave reaches them — for
            // queue-length purposes the arrivals then match immediately,
            // so we model only the pre-posted portion).
            let mut posts: Vec<(u32, i32, i32)> = Vec::new(); // (rank, src, tag)
            for o in oct..group_end {
                let dir = DIRS[(o % 4) as usize];
                for y in 0..py {
                    for x in 0..px {
                        let rank = rank_of(p.grid, x, y).expect("in grid");
                        let upstream = [
                            rank_of(p.grid, x - dir[0], y),
                            rank_of(p.grid, x, y - dir[1]),
                        ];
                        let window = if on_inflow_boundary(p.grid, dir, x, y) {
                            p.blocks
                        } else {
                            2.min(p.blocks)
                        };
                        for up in upstream.into_iter().flatten() {
                            for b in 0..window {
                                posts.push((rank, up as i32, (o * p.blocks + b) as i32));
                            }
                        }
                    }
                }
            }
            posts.shuffle(&mut rng);
            for (rank, src, tag) in posts {
                world.post_recv(rank, src, tag, 0);
            }
            // Phase 2: the wavefronts. Ranks forward block messages in
            // sweep order; a receiver beyond its pre-post window posts the
            // receive just-in-time, immediately before the arrival — which
            // is why interior queues stay tiny.
            for o in oct..group_end {
                let dir = DIRS[(o % 4) as usize];
                for b in 0..p.blocks {
                    for sy in 0..py {
                        for sx in 0..px {
                            let x = if dir[0] > 0 { sx } else { px - 1 - sx };
                            let y = if dir[1] > 0 { sy } else { py - 1 - sy };
                            let rank = rank_of(p.grid, x, y).expect("in grid");
                            let tag = (o * p.blocks + b) as i32;
                            for (dx, dy) in [(dir[0], 0), (0, dir[1])] {
                                let Some(dst) = rank_of(p.grid, x + dx, y + dy) else {
                                    continue;
                                };
                                let window = if on_inflow_boundary(p.grid, dir, x + dx, y + dy) {
                                    p.blocks
                                } else {
                                    2.min(p.blocks)
                                };
                                if b >= window {
                                    world.post_recv(dst, rank as i32, tag, 0);
                                }
                                world.send(rank, dst, tag, 0, p.bytes);
                            }
                        }
                    }
                }
            }
            world.barrier();
            oct = group_end;
        }
    }
    world.trace().expect("tracing enabled").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_predicate_matches_geometry() {
        let grid = [4, 4];
        // Sweeping +x,+y: inflow boundary is the x=0 column and y=0 row.
        assert!(on_inflow_boundary(grid, [1, 1], 0, 2));
        assert!(on_inflow_boundary(grid, [1, 1], 2, 0));
        assert!(!on_inflow_boundary(grid, [1, 1], 2, 2));
        // Sweeping -x,-y: opposite edges.
        assert!(on_inflow_boundary(grid, [-1, -1], 3, 1));
        assert!(!on_inflow_boundary(grid, [-1, -1], 1, 1));
    }

    #[test]
    fn queues_drain_and_umq_stays_bounded() {
        let trace = run(Sweep3dParams::small());
        assert!(trace.posted.total() > 0);
        assert!(trace.posted.count_for(0) > 0, "queues return to empty");
        // JIT posting happens immediately before the send, so nothing goes
        // unexpected in this motif's deterministic schedule.
        assert_eq!(trace.unexpected.total(), 0);
    }

    #[test]
    fn interior_mass_small_with_tail_to_window_depth() {
        let p = Sweep3dParams::small();
        let trace = run(p);
        // Mass concentrated at 0-19 (paper: most samples at 0-9 with
        // width-10 buckets).
        let low: u64 = trace.posted.buckets().take(2).map(|(_, _, c)| c).sum();
        assert!(
            low * 2 > trace.posted.total(),
            "low buckets hold {low} of {}",
            trace.posted.total()
        );
        // Tail reaches the boundary ranks' pre-posted window (2 upstreams ×
        // blocks × overlap is the ceiling; at least blocks must be seen).
        assert!(
            trace.posted.max_bucket_hi() as u32 >= p.blocks,
            "tail reaches only {}",
            trace.posted.max_bucket_hi()
        );
    }

    #[test]
    fn more_blocks_deepen_the_tail() {
        let a = run(Sweep3dParams {
            blocks: 4,
            ..Sweep3dParams::small()
        });
        let b = run(Sweep3dParams {
            blocks: 24,
            ..Sweep3dParams::small()
        });
        assert!(b.posted.max_bucket_hi() > a.posted.max_bucket_hi());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(Sweep3dParams::small());
        let b = run(Sweep3dParams::small());
        assert_eq!(
            a.posted.buckets().collect::<Vec<_>>(),
            b.posted.buckets().collect::<Vec<_>>()
        );
    }
}
