//! Halo3D: nearest-neighbour halo exchange (Figure 1c).
//!
//! Ranks form a non-periodic 3-D process grid; each iteration every rank
//! posts receives for each neighbour and variable, then sends its halo
//! faces. Ranks enter the phase in a scheduler-shuffled order, so a rank
//! whose neighbour has not yet taken its turn receives *unexpected*
//! messages — producing the UMQ samples the paper's trace shows. Queue
//! lengths stay small ("relatively few elements in the queue and many very
//! small queue length operations"), peaking at `neighbours × variables`.

use spc_rng::SliceRandom;
use spc_rng::{Rng, SeedableRng};

use spc_core::stats::Histogram;
use spc_mpisim::{QueueTrace, SimWorld, TraceConfig, WorldConfig};

/// Neighbour shape of the exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaloStencil {
    /// Faces only (7-point stencil: 6 neighbours).
    Faces6,
    /// Faces, edges and corners (27-point stencil: 26 neighbours).
    Full26,
}

/// Halo3D motif parameters.
#[derive(Clone, Copy, Debug)]
pub struct Halo3dParams {
    /// Process-grid extents.
    pub grid: [u32; 3],
    /// Exchange shape.
    pub stencil: HaloStencil,
    /// Variables exchanged per neighbour per iteration (each is one
    /// message).
    pub vars: u32,
    /// Iterations to run.
    pub iterations: u32,
    /// Message payload bytes (affects nothing in untimed tracing).
    pub bytes: u64,
    /// Fraction of ranks whose per-iteration direction schedule is
    /// decorrelated from the bulk (OS noise / load imbalance); these
    /// stragglers produce the distribution's tail.
    pub straggler_fraction: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Histogram bucket width (the paper uses 5 for Halo3D).
    pub trace_width: u64,
}

impl Halo3dParams {
    /// The paper's scale: 256 Ki ranks (64×64×64), 27-point, a few
    /// variables.
    pub fn paper_scale() -> Self {
        Self {
            grid: [64, 64, 64],
            stencil: HaloStencil::Full26,
            vars: 4,
            iterations: 4,
            bytes: 8 * 1024,
            straggler_fraction: 0.25,
            seed: 0x4a10,
            trace_width: 5,
        }
    }

    /// A laptop-scale configuration with the same shape (for tests).
    pub fn small() -> Self {
        Self {
            grid: [8, 8, 8],
            ..Self::paper_scale()
        }
    }

    /// Total ranks.
    pub fn ranks(&self) -> u32 {
        self.grid.iter().product()
    }
}

fn offsets(stencil: HaloStencil) -> Vec<[i64; 3]> {
    let mut out = Vec::new();
    for dx in -1..=1i64 {
        for dy in -1..=1i64 {
            for dz in -1..=1i64 {
                if (dx, dy, dz) == (0, 0, 0) {
                    continue;
                }
                let manhattan = dx.abs() + dy.abs() + dz.abs();
                match stencil {
                    HaloStencil::Faces6 if manhattan == 1 => out.push([dx, dy, dz]),
                    HaloStencil::Full26 => out.push([dx, dy, dz]),
                    _ => {}
                }
            }
        }
    }
    out
}

fn rank_of(grid: [u32; 3], p: [i64; 3]) -> Option<u32> {
    for i in 0..3 {
        if p[i] < 0 || p[i] >= grid[i] as i64 {
            return None;
        }
    }
    Some(((p[2] as u32 * grid[1] + p[1] as u32) * grid[0]) + p[0] as u32)
}

fn coords_of(grid: [u32; 3], rank: u32) -> [i64; 3] {
    let x = rank % grid[0];
    let y = (rank / grid[0]) % grid[1];
    let z = rank / (grid[0] * grid[1]);
    [x as i64, y as i64, z as i64]
}

/// Runs the motif, returning the queue-length trace.
///
/// Each iteration proceeds in `neighbours × vars` *slots*. In a slot, every
/// rank (in a scheduler-shuffled order) posts the receive for one
/// (direction, variable) pair of its schedule and sends the corresponding
/// halo message. Bulk ranks process the schedule in the common order, so
/// their queues hover near zero — the paper's "many very small queue length
/// operations". Straggler ranks use a private permutation, decorrelating
/// their posts from the bulk's sends and producing the tail out to
/// `neighbours × vars`.
pub fn run(p: Halo3dParams) -> QueueTrace {
    let mut world = SimWorld::new(WorldConfig {
        trace: Some(TraceConfig::uniform(p.trace_width)),
        ..WorldConfig::untimed(p.ranks(), p.trace_width)
    });
    let offs = offsets(p.stencil);
    let nslots = (offs.len() as u32 * p.vars) as usize;
    let mut rng = spc_rng::StdRng::seed_from_u64(p.seed);
    let mut order: Vec<u32> = (0..p.ranks()).collect();

    for _iter in 0..p.iterations {
        // Per-iteration schedules: identity for the bulk, shuffled for
        // stragglers.
        let schedules: Vec<Option<Vec<u32>>> = (0..p.ranks())
            .map(|_| {
                if rng.gen_bool(p.straggler_fraction) {
                    let mut perm: Vec<u32> = (0..nslots as u32).collect();
                    perm.shuffle(&mut rng);
                    Some(perm)
                } else {
                    None
                }
            })
            .collect();
        for slot in 0..nslots {
            order.shuffle(&mut rng);
            for &rank in &order {
                let k = match &schedules[rank as usize] {
                    Some(perm) => perm[slot] as usize,
                    None => slot,
                };
                let (di, v) = (k / p.vars as usize, (k % p.vars as usize) as u32);
                let off = offs[di];
                let c = coords_of(p.grid, rank);
                // Post the receive for the message arriving *from* `off`.
                let from = [c[0] - off[0], c[1] - off[1], c[2] - off[2]];
                if let Some(src) = rank_of(p.grid, from) {
                    world.post_recv(rank, src as i32, (di as u32 * p.vars + v) as i32, 0);
                }
                // Send this rank's face *towards* `off`.
                let to = [c[0] + off[0], c[1] + off[1], c[2] + off[2]];
                if let Some(dst) = rank_of(p.grid, to) {
                    world.send(rank, dst, (di as u32 * p.vars + v) as i32, 0, p.bytes);
                }
            }
        }
        world.barrier();
    }
    world.trace().expect("tracing enabled").clone()
}

/// Convenience: run and return just the posted-queue histogram.
pub fn posted_histogram(p: Halo3dParams) -> Histogram {
    run(p).posted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_drain_completely() {
        let p = Halo3dParams {
            grid: [4, 4, 4],
            iterations: 2,
            ..Halo3dParams::small()
        };
        let trace = run(p);
        // Every send has a receive: the motif is balanced, so the samples
        // of additions equal the samples of deletions per queue... and the
        // final sample of each fully-drained rank is 0.
        assert!(trace.posted.total() > 0);
        assert!(trace.posted.count_for(0) > 0, "queues return to empty");
    }

    #[test]
    fn lengths_bounded_by_neighbors_times_vars() {
        let p = Halo3dParams::small();
        let trace = run(p);
        let max_possible = 26 * p.vars as u64;
        assert!(
            trace.posted.max_bucket_hi() <= max_possible + p.trace_width,
            "max bucket {} exceeds {}",
            trace.posted.max_bucket_hi(),
            max_possible
        );
    }

    #[test]
    fn shuffled_entry_produces_unexpected_messages() {
        let trace = run(Halo3dParams::small());
        assert!(
            trace.unexpected.total() > 0,
            "ranks later in the schedule must see unexpected arrivals"
        );
    }

    #[test]
    fn distribution_is_bottom_heavy() {
        // Figure 1c: "many very small queue length operations".
        let trace = run(Halo3dParams::small());
        let small: u64 = trace.posted.buckets().take(2).map(|(_, _, c)| c).sum();
        assert!(
            small * 2 > trace.posted.total(),
            "most samples in the lowest buckets: {small} of {}",
            trace.posted.total()
        );
    }

    #[test]
    fn faces6_produces_fewer_messages_than_full26() {
        let base = Halo3dParams {
            grid: [4, 4, 4],
            iterations: 1,
            ..Halo3dParams::small()
        };
        let t6 = run(Halo3dParams {
            stencil: HaloStencil::Faces6,
            ..base
        });
        let t26 = run(Halo3dParams {
            stencil: HaloStencil::Full26,
            ..base
        });
        assert!(t26.posted.total() > 2 * t6.posted.total());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(Halo3dParams::small());
        let b = run(Halo3dParams::small());
        let rows_a: Vec<_> = a.posted.buckets().collect();
        let rows_b: Vec<_> = b.posted.buckets().collect();
        assert_eq!(rows_a, rows_b);
    }
}
