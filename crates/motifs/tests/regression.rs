//! Regression: the AMR motif at 64 Ki ranks must keep its match-list tail
//! within the refinement-degree cap. Before ranks compared in an unsigned
//! 16-bit domain, entries for ranks ≥ 32768 never matched and queues leaked
//! unboundedly (tails past 1400 instead of the paper's mid-400s).

#[test]
fn amr_at_64ki_ranks_respects_the_degree_cap() {
    use spc_motifs::amr::*;
    let p = AmrParams {
        iterations: 4,
        ..AmrParams::paper_scale()
    };
    let t = run(p);
    let (lo, _, _) = t
        .posted
        .buckets()
        .filter(|(_, _, c)| *c > 0)
        .last()
        .expect("data");
    assert!(
        lo <= p.max_degree as u64 + p.trace_width,
        "posted tail {lo} exceeds max degree {}",
        p.max_degree
    );
}
