//! Open- and closed-loop queueing around a caller-supplied service function.
//!
//! The icarus-style outputs the traffic suite needs — sojourn-latency
//! percentiles, rejection %, queue occupancy — come from a queueing model,
//! not from back-to-back calls: a matching engine timed in a tight loop
//! shows service time only, never the waiting that builds when arrivals are
//! independent of completions. The discrete-event simulators here supply
//! that model around *any* service function `serve(i) -> ns`:
//!
//! * [`open_loop`] — Poisson arrivals at a configured mean inter-arrival
//!   gap (optionally modulated by [`Burst`] phases), one FIFO server, and a
//!   **bounded run queue**: an arrival that finds `run_queue_cap` requests
//!   waiting is rejected, never served. This is the "millions of users"
//!   shape — clients do not slow down because the server is busy.
//! * [`closed_loop`] — a fixed window of clients, each issuing its next
//!   request the moment the previous one completes (plus optional think
//!   time). Load is self-limiting, so nothing is rejected; latency grows
//!   with the window instead.
//!
//! Time is simulated (f64 nanoseconds); the only real-time input is
//! whatever the service function returns, so a synthetic service model
//! makes whole scenarios deterministic and unit-testable.

use spc_core::stats::{DepthStats, Histogram};
use spc_rng::{Rng, SeedableRng, StdRng};
use std::collections::VecDeque;

/// Periodic burst modulation for the open-loop arrival process: during the
/// second half of every `period` requests, the arrival *rate* is multiplied
/// by `factor` (inter-arrival gaps divide by it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burst {
    /// Requests per burst cycle (> 0); the burst occupies the second half.
    pub period: usize,
    /// Rate multiplier inside the burst (> 0; 1.0 disables, 4.0 is a 4×
    /// arrival spike).
    pub factor: f64,
}

/// Open-loop (arrival-driven) configuration.
#[derive(Clone, Debug)]
pub struct OpenLoopCfg {
    /// Mean inter-arrival gap in simulated ns (Poisson process).
    pub mean_interarrival_ns: f64,
    /// Run-queue admission cap: arrivals finding this many requests
    /// *waiting* (excluding the one in service) are rejected.
    pub run_queue_cap: usize,
    /// Optional burst phases.
    pub burst: Option<Burst>,
    /// Latency-histogram bucket width in ns.
    pub latency_bucket_ns: u64,
    /// Seed for the arrival process.
    pub seed: u64,
}

/// Closed-loop (completion-driven) configuration.
#[derive(Clone, Debug)]
pub struct ClosedLoopCfg {
    /// Concurrent clients (> 0); each has exactly one request outstanding.
    pub clients: usize,
    /// Simulated pause between a completion and the client's next issue.
    pub think_ns: f64,
    /// Latency-histogram bucket width in ns.
    pub latency_bucket_ns: u64,
}

/// What a scenario run produced.
#[derive(Clone, Debug)]
pub struct LoopResult {
    /// Sojourn latency (arrival → completion) of every *served* request.
    pub latency: Histogram,
    /// Run-queue backlog observed at each arrival (waiting requests, not
    /// counting the one in service).
    pub occupancy: DepthStats,
    /// Requests that reached the server.
    pub served: usize,
    /// Requests rejected at the run-queue cap (open loop only).
    pub rejected: usize,
    /// Total simulated time the server spent serving.
    pub busy_ns: f64,
    /// Simulated end-to-end duration of the run.
    pub makespan_ns: f64,
}

impl LoopResult {
    /// Fraction of offered requests rejected at admission.
    pub fn reject_frac(&self) -> f64 {
        let offered = self.served + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }

    /// Server utilization over the run.
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.busy_ns / self.makespan_ns
        } else {
            0.0
        }
    }
}

fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    // Inverse CDF; gen::<f64>() is in [0, 1) so the log argument is (0, 1].
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// Runs `n` offered requests through a Poisson/FIFO/bounded-queue server.
///
/// `serve(i)` is called once per **admitted** request, in admission order,
/// and returns that request's service time in ns; rejected requests never
/// reach it (the work they would have done is refused at the door, which is
/// the whole point of backpressure).
pub fn open_loop(cfg: &OpenLoopCfg, n: usize, mut serve: impl FnMut(usize) -> u64) -> LoopResult {
    assert!(
        cfg.mean_interarrival_ns > 0.0,
        "arrival gap must be positive"
    );
    if let Some(b) = cfg.burst {
        assert!(b.period > 0 && b.factor > 0.0, "degenerate burst");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut latency = Histogram::new(cfg.latency_bucket_ns.max(1));
    let mut occupancy = DepthStats::new();
    // Completion times of every admitted-but-not-finished request; the
    // front is the request in service.
    let mut in_flight: VecDeque<f64> = VecDeque::new();
    let mut clock = 0.0f64;
    let mut last_completion = 0.0f64;
    let mut busy = 0.0f64;
    let (mut served, mut rejected) = (0usize, 0usize);
    for i in 0..n {
        let mut gap = cfg.mean_interarrival_ns;
        if let Some(b) = cfg.burst {
            if (i % b.period) * 2 >= b.period {
                gap /= b.factor;
            }
        }
        clock += exp_sample(&mut rng, gap);
        while in_flight.front().is_some_and(|&c| c <= clock) {
            in_flight.pop_front();
        }
        // Everyone still in flight except the head is waiting.
        let backlog = in_flight.len().saturating_sub(1);
        occupancy.record(backlog as u64);
        if backlog >= cfg.run_queue_cap {
            rejected += 1;
            continue;
        }
        let service = serve(served) as f64;
        let start = if last_completion > clock {
            last_completion
        } else {
            clock
        };
        let completion = start + service;
        in_flight.push_back(completion);
        latency.record((completion - clock) as u64);
        busy += service;
        last_completion = completion;
        served += 1;
    }
    LoopResult {
        latency,
        occupancy,
        served,
        rejected,
        busy_ns: busy,
        makespan_ns: last_completion.max(clock),
    }
}

/// Runs `n` requests from a fixed window of clients through one FIFO
/// server. `serve(i)` is called once per request, in dispatch order.
pub fn closed_loop(
    cfg: &ClosedLoopCfg,
    n: usize,
    mut serve: impl FnMut(usize) -> u64,
) -> LoopResult {
    assert!(cfg.clients > 0, "closed loop needs at least one client");
    assert!(cfg.think_ns >= 0.0, "think time cannot be negative");
    let mut latency = Histogram::new(cfg.latency_bucket_ns.max(1));
    let mut occupancy = DepthStats::new();
    // Per-client time at which its next request is issued.
    let mut ready: Vec<f64> = vec![0.0; cfg.clients];
    let mut server_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut makespan = 0.0f64;
    for i in 0..n {
        // FIFO over issue times: dispatch the earliest-ready client.
        let (c, _) = ready
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("simulated times are finite"))
            .expect("at least one client");
        let issued = ready[c];
        let start = if server_free > issued {
            server_free
        } else {
            issued
        };
        // Clients whose requests were issued but not yet started are the
        // queue this client waited in.
        let waiting = ready.iter().filter(|&&r| r <= start).count() - 1;
        occupancy.record(waiting as u64);
        let service = serve(i) as f64;
        let completion = start + service;
        latency.record((completion - issued) as u64);
        busy += service;
        server_free = completion;
        makespan = completion;
        ready[c] = completion + cfg.think_ns;
    }
    LoopResult {
        latency,
        occupancy,
        served: n,
        rejected: 0,
        busy_ns: busy,
        makespan_ns: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_cfg(gap: f64, cap: usize) -> OpenLoopCfg {
        OpenLoopCfg {
            mean_interarrival_ns: gap,
            run_queue_cap: cap,
            burst: None,
            latency_bucket_ns: 16,
            seed: 42,
        }
    }

    #[test]
    fn underloaded_open_loop_has_no_rejections_and_thin_tail() {
        // Load 0.25: constant 50ns service, 200ns mean gap.
        let r = open_loop(&open_cfg(200.0, 64), 20_000, |_| 50);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.served, 20_000);
        assert!(r.utilization() < 0.35, "util {}", r.utilization());
        // Most requests find an idle server: p50 ≈ service time.
        assert!(
            r.latency.percentile(0.5) < 100,
            "p50 {}",
            r.latency.percentile(0.5)
        );
        assert!(r.occupancy.mean() < 0.5);
    }

    #[test]
    fn overloaded_open_loop_rejects_and_saturates_the_cap() {
        // Load 2.0: the queue fills to the cap and stays there.
        let cap = 8;
        let r = open_loop(&open_cfg(25.0, cap), 20_000, |_| 50);
        assert!(r.rejected > 5_000, "rejected {}", r.rejected);
        assert!(r.reject_frac() > 0.25 && r.reject_frac() < 0.75);
        assert_eq!(r.occupancy.max, cap as u64, "backlog capped");
        assert!(r.utilization() > 0.95, "server never starves");
        // Served latencies are bounded by the cap: at most (cap+1) services
        // ahead of you (plus sub-ns rounding).
        assert!(r.latency.max_bucket_hi() <= ((cap as u64 + 2) * 50).next_multiple_of(16));
    }

    #[test]
    fn bursts_fatten_the_tail_at_equal_mean_load() {
        let calm = open_loop(&open_cfg(100.0, 1024), 40_000, |_| 50);
        let mut cfg = open_cfg(100.0, 1024);
        // Same offered load on average is not even needed — bursts at the
        // *same base gap* strictly add pressure during spikes.
        cfg.burst = Some(Burst {
            period: 1000,
            factor: 6.0,
        });
        let bursty = open_loop(&cfg, 40_000, |_| 50);
        assert!(
            bursty.latency.percentile(0.99) > 2 * calm.latency.percentile(0.99),
            "burst p99 {} vs calm p99 {}",
            bursty.latency.percentile(0.99),
            calm.latency.percentile(0.99)
        );
    }

    #[test]
    fn closed_loop_latency_scales_with_the_client_window() {
        let cfg = |w| ClosedLoopCfg {
            clients: w,
            think_ns: 0.0,
            latency_bucket_ns: 8,
        };
        let one = closed_loop(&cfg(1), 5_000, |_| 100);
        let four = closed_loop(&cfg(4), 5_000, |_| 100);
        // One client: latency == service. Four: each waits for 3 peers.
        // (Percentiles are bucket-resolved: exact to within one width.)
        assert!(one.latency.percentile(0.5).abs_diff(100) < 8);
        assert!(four.latency.percentile(0.5).abs_diff(400) < 8);
        assert_eq!(four.rejected, 0, "closed loops never reject");
        assert!(four.utilization() > 0.99);
        assert_eq!(four.occupancy.max, 3, "window minus the one in service");
    }

    #[test]
    fn think_time_drains_the_closed_queue() {
        let r = closed_loop(
            &ClosedLoopCfg {
                clients: 4,
                think_ns: 10_000.0,
                latency_bucket_ns: 8,
            },
            2_000,
            |_| 100,
        );
        // With think ≫ service the server idles between requests.
        assert!(r.utilization() < 0.2, "util {}", r.utilization());
        assert!(r.latency.percentile(0.5).abs_diff(100) < 8);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = open_loop(&open_cfg(80.0, 16), 10_000, |i| 40 + (i as u64 % 7) * 10);
        let b = open_loop(&open_cfg(80.0, 16), 10_000, |i| 40 + (i as u64 % 7) * 10);
        assert_eq!(a.served, b.served);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(
            a.latency.buckets().collect::<Vec<_>>(),
            b.latency.buckets().collect::<Vec<_>>()
        );
    }
}
