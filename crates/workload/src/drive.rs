//! Turning a request stream into match-engine operations.
//!
//! A service request is one message flow: the expected path posts the
//! receive, then delivers the matching arrival; the unexpected path lands
//! the arrival first and lets the receive chase it through the UMQ. On its
//! own that pair would always search depth ≈ 0 — both queues drain every
//! request — so [`prime_standing`] first installs a *standing window* of
//! receives whose tags never match the traffic (long-lived `MPI_Irecv`s, in
//! MPI terms). Every arrival then searches past a popularity-shaped
//! standing population, which is exactly where Zipf-vs-uniform locality
//! shows up: skewed traffic concentrates both the standing entries and the
//! searches on the same hot sources.
//!
//! All operations go through the bounded `try_*` surface, so an engine
//! configured with [`QueueBounds`](spc_core::QueueBounds) exerts real
//! admission backpressure; [`EngineTally`] reports what was matched,
//! queued, and refused.

use crate::Request;
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::MatchList;
use spc_core::{Envelope, MatchEngine, RecvSpec, TryArrivalOutcome, TryRecvOutcome};

/// Tag offset for standing receives; scenario traffic keeps its tags below
/// this so the standing window is searched but never consumed.
pub const STANDING_TAG_BASE: i32 = 1 << 20;

/// Request-handle offset for standing receives (keeps them distinguishable
/// from per-request handles in traces).
pub const STANDING_REQ_BASE: u64 = 1 << 40;

/// Outcome counters for a driven scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTally {
    /// Flows completed with a PRQ hit (expected path worked end to end).
    pub matched_expected: u64,
    /// Flows completed with a UMQ hit (unexpected path worked end to end).
    pub matched_unexpected: u64,
    /// Receive posts refused at the PRQ admission cap.
    pub recv_rejected: u64,
    /// Arrivals refused at the UMQ admission cap (messages dropped).
    pub arrival_rejected: u64,
    /// Flows left unpaired this request (their halves stay queued and may
    /// pair with a later flow on the same source/tag).
    pub deferred: u64,
}

impl EngineTally {
    /// Total engine-level admission rejections.
    pub fn rejections(&self) -> u64 {
        self.recv_rejected + self.arrival_rejected
    }
}

/// Posts `window` standing receives drawn from `sources[..]` in round-robin
/// over a separate tag space, giving both bins and linear lists a
/// popularity-shaped standing population to search past.
///
/// `sources` should be sampled from the same popularity distribution as the
/// traffic (e.g. by drawing requests from the scenario's [`RequestGen`]
/// (crate::RequestGen) and taking their sources).
pub fn prime_standing<P, U>(eng: &mut MatchEngine<P, U>, sources: &[i32], window: usize)
where
    P: MatchList<PostedEntry>,
    U: MatchList<UnexpectedEntry>,
{
    assert!(!sources.is_empty(), "standing window needs sources");
    for i in 0..window {
        let src = sources[i % sources.len()];
        let spec = RecvSpec::new(src, STANDING_TAG_BASE + i as i32, 0);
        let out = eng.try_post_recv(spec, STANDING_REQ_BASE + i as u64);
        assert!(
            matches!(out, TryRecvOutcome::Posted),
            "standing receives must be admitted (raise max_prq above the window): {out:?}"
        );
    }
}

/// Executes one request flow against the engine, returning what happened.
///
/// The per-flow payload/request handle is `handle`; callers typically pass
/// the request index.
pub fn execute<P, U>(eng: &mut MatchEngine<P, U>, req: Request, handle: u64) -> EngineTally
where
    P: MatchList<PostedEntry>,
    U: MatchList<UnexpectedEntry>,
{
    let spec = RecvSpec::new(req.source, req.tag, 0);
    let env = Envelope::new(req.source, req.tag, 0);
    let mut t = EngineTally::default();
    if req.unexpected {
        match eng.try_arrival(env, handle) {
            TryArrivalOutcome::RejectedUmqFull { .. } => t.arrival_rejected += 1,
            // Matching an earlier flow's posted receive is fine: same
            // source and tag, FIFO order.
            TryArrivalOutcome::MatchedPosted { .. } => t.matched_expected += 1,
            TryArrivalOutcome::Queued => {}
        }
        match eng.try_post_recv(spec, handle) {
            TryRecvOutcome::MatchedUnexpected { .. } => t.matched_unexpected += 1,
            TryRecvOutcome::RejectedPrqFull { .. } => t.recv_rejected += 1,
            TryRecvOutcome::Posted => t.deferred += 1,
        }
    } else {
        match eng.try_post_recv(spec, handle) {
            TryRecvOutcome::RejectedPrqFull { .. } => t.recv_rejected += 1,
            TryRecvOutcome::MatchedUnexpected { .. } => t.matched_unexpected += 1,
            TryRecvOutcome::Posted => {}
        }
        match eng.try_arrival(env, handle) {
            TryArrivalOutcome::MatchedPosted { .. } => t.matched_expected += 1,
            TryArrivalOutcome::RejectedUmqFull { .. } => t.arrival_rejected += 1,
            TryArrivalOutcome::Queued => t.deferred += 1,
        }
    }
    t
}

impl EngineTally {
    /// Accumulates another tally.
    pub fn absorb(&mut self, other: EngineTally) {
        self.matched_expected += other.matched_expected;
        self.matched_unexpected += other.matched_unexpected;
        self.recv_rejected += other.recv_rejected;
        self.arrival_rejected += other.arrival_rejected;
        self.deferred += other.deferred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::{Popularity, RequestGen, TrafficCfg};
    use spc_core::list::{Lla, SourceBins};
    use spc_core::QueueBounds;

    type Eng = MatchEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>;

    fn sources(n: usize, pop: Popularity, seed: u64) -> Vec<i32> {
        let mut g = RequestGen::new(TrafficCfg::new(pop, seed));
        (0..n).map(|_| g.next_request().source).collect()
    }

    #[test]
    fn standing_window_persists_under_traffic() {
        let mut eng: Eng = MatchEngine::new(Lla::new(), Lla::new());
        prime_standing(&mut eng, &sources(64, Popularity::Uniform, 1), 64);
        assert_eq!(eng.prq_len(), 64);
        let mut g = RequestGen::new(TrafficCfg::new(Popularity::Uniform, 2));
        let mut tally = EngineTally::default();
        for h in 0..2_000u64 {
            tally.absorb(execute(&mut eng, g.next_request(), h));
        }
        // The standing receives are never consumed, and every flow pairs
        // off (deferred halves pair with later same-key flows, so the net
        // beyond the window stays small).
        assert_eq!(
            tally.matched_expected + tally.matched_unexpected + tally.deferred,
            2_000
        );
        assert!(eng.prq_len() >= 64, "standing window intact");
        assert_eq!(tally.rejections(), 0, "unbounded engine never rejects");
        // Searches really run at standing depth: arrivals scan past the
        // window before finding their posted receive.
        assert!(eng.stats().prq_search.mean() > 32.0);
    }

    #[test]
    fn umq_cap_drops_unexpected_floods() {
        let mut eng: Eng = MatchEngine::with_bounds(
            Lla::new(),
            Lla::new(),
            QueueBounds {
                max_prq: usize::MAX,
                max_umq: 8,
            },
        );
        let mut g = RequestGen::new(TrafficCfg {
            unexpected_frac: 1.0,
            ..TrafficCfg::new(Popularity::Zipf { s: 1.0 }, 3)
        });
        let mut tally = EngineTally::default();
        for h in 0..1_000u64 {
            tally.absorb(execute(&mut eng, g.next_request(), h));
        }
        // Arrival-first flows: each arrival queues (or is dropped), each
        // post consumes one queued arrival, so the UMQ hovers around 0-1
        // and nothing overflows... unless the *post* side is also racing.
        // With pure pairs the cap is never hit:
        assert_eq!(tally.arrival_rejected, 0);
        // Now flood arrivals without posts by driving the engine directly.
        for h in 0..100u64 {
            let r = crate::Request {
                source: 1,
                tag: 0,
                unexpected: true,
            };
            let spec = spc_core::Envelope::new(r.source, r.tag, 0);
            let _ = eng.try_arrival(spec, h);
        }
        assert_eq!(eng.umq_len(), 8, "cap holds");
        assert_eq!(eng.stats().umq_rejections, 100 - 8 + tally.arrival_rejected);
    }

    #[test]
    fn zipf_standing_window_skews_bin_depths() {
        // With SourceBins, standing entries pile into the hot sources' bins:
        // Zipf traffic then searches deeper than uniform traffic at equal
        // window size — the locality delta the suite measures. (HashBins
        // would hide it: its hash covers the tag, and standing tags are
        // unique, so bins fill uniformly under any source popularity.)
        let depth_with = |pop: Popularity| {
            let mut eng: MatchEngine<SourceBins<PostedEntry>, Lla<UnexpectedEntry, 3>> =
                MatchEngine::new(SourceBins::new(256), Lla::new());
            prime_standing(&mut eng, &sources(256, pop, 5), 256);
            let mut g = RequestGen::new(TrafficCfg {
                unexpected_frac: 0.0,
                ..TrafficCfg::new(pop, 6)
            });
            for h in 0..4_000u64 {
                execute(&mut eng, g.next_request(), h);
            }
            eng.stats().prq_search.mean()
        };
        let uniform = depth_with(Popularity::Uniform);
        let zipf = depth_with(Popularity::Zipf { s: 1.2 });
        assert!(
            zipf > 1.5 * uniform,
            "hot-bin pileup: zipf depth {zipf:.1} vs uniform {uniform:.1}"
        );
    }
}
