//! Zipf-skewed popularity and hot-key churn.
//!
//! Jain's destination-address-locality study (see PAPERS.md) models
//! datacenter traffic as Zipf-distributed over destinations; the classic
//! web-caching exponent is s ≈ 1. The sampler here precomputes the CDF of
//! `w(r) = 1/(r+1)^s` over the rank space and samples by binary search —
//! O(log n) per draw, exact, and deterministic under `spc-rng`. Exponent 0
//! gives every rank equal weight, so "uniform" is just `Zipf { s: 0.0 }`
//! and the scenario matrix needs no special casing.

use crate::Request;
use spc_rng::{Rng, SeedableRng, StdRng};

/// Source-popularity shapes the traffic matrix sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Popularity {
    /// Every source equally likely.
    Uniform,
    /// Zipf-distributed ranks with exponent `s` (s ≈ 1.0 is the classic
    /// web/service skew; larger is hotter).
    Zipf {
        /// The exponent; 0.0 degenerates to uniform.
        s: f64,
    },
}

impl Popularity {
    /// The effective Zipf exponent (uniform is exponent 0).
    pub fn exponent(self) -> f64 {
        match self {
            Popularity::Uniform => 0.0,
            Popularity::Zipf { s } => s,
        }
    }

    /// Matrix label: `uniform` or `zipf<s>`.
    pub fn label(self) -> String {
        match self {
            Popularity::Uniform => "uniform".into(),
            Popularity::Zipf { s } => format!("zipf{s}"),
        }
    }
}

/// Samples ranks `0..n` with probability ∝ `1/(rank+1)^s`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks (> 0) with exponent `s` (>= 0).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the rank space is a single key.
    pub fn is_empty(&self) -> bool {
        false // n > 0 is enforced at construction
    }

    /// Draws one rank: 0 is always the hottest.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.gen::<f64>();
        // First rank whose cumulative weight exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Hot-key churn: every `every` requests the rank→source mapping rotates by
/// `stride`, so the *identity* of the hot sources drifts while the
/// popularity *shape* is preserved — the pattern that defeats caches warmed
/// on a static hot set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Churn {
    /// Requests between rotations (> 0).
    pub every: usize,
    /// Ranks the mapping shifts per rotation.
    pub stride: u32,
}

/// Traffic-stream configuration for [`RequestGen`].
#[derive(Clone, Debug)]
pub struct TrafficCfg {
    /// Number of distinct sources (the key space).
    pub sources: u32,
    /// Number of distinct tags (cycled per request).
    pub tags: i32,
    /// Source-popularity shape.
    pub popularity: Popularity,
    /// Fraction of requests taking the arrival-first (unexpected) path.
    pub unexpected_frac: f64,
    /// Optional hot-key rotation.
    pub churn: Option<Churn>,
    /// RNG seed; the stream is a pure function of this config.
    pub seed: u64,
}

impl TrafficCfg {
    /// A small default scenario: 256 sources, 8 tags, 30% unexpected.
    pub fn new(popularity: Popularity, seed: u64) -> Self {
        Self {
            sources: 256,
            tags: 8,
            popularity,
            unexpected_frac: 0.3,
            churn: None,
            seed,
        }
    }
}

/// Deterministic service-request stream: Zipf/uniform source draws, cycled
/// tags, Bernoulli expected/unexpected mix, and optional churn.
#[derive(Clone, Debug)]
pub struct RequestGen {
    cfg: TrafficCfg,
    zipf: ZipfSampler,
    rng: StdRng,
    issued: usize,
    offset: u32,
}

impl RequestGen {
    /// Builds the stream from its config.
    pub fn new(cfg: TrafficCfg) -> Self {
        assert!(cfg.sources > 0 && cfg.tags > 0, "empty key space");
        assert!(
            (0.0..=1.0).contains(&cfg.unexpected_frac),
            "unexpected_frac must be a probability"
        );
        if let Some(c) = cfg.churn {
            assert!(c.every > 0, "churn period must be positive");
        }
        let zipf = ZipfSampler::new(cfg.sources as usize, cfg.popularity.exponent());
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            zipf,
            rng,
            issued: 0,
            offset: 0,
        }
    }

    /// The stream's config.
    pub fn cfg(&self) -> &TrafficCfg {
        &self.cfg
    }

    /// The source the hottest rank currently maps to (shifts under churn).
    pub fn hot_source(&self) -> i32 {
        (self.offset % self.cfg.sources) as i32
    }

    /// Draws the next request.
    pub fn next_request(&mut self) -> Request {
        if let Some(c) = self.cfg.churn {
            if self.issued > 0 && self.issued.is_multiple_of(c.every) {
                self.offset = (self.offset + c.stride) % self.cfg.sources;
            }
        }
        let rank = self.zipf.sample(&mut self.rng) as u32;
        let source = ((rank + self.offset) % self.cfg.sources) as i32;
        let tag = (self.issued as i32).rem_euclid(self.cfg.tags);
        let unexpected = self.rng.gen_bool(self.cfg.unexpected_frac);
        self.issued += 1;
        Request {
            source,
            tag,
            unexpected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pop: Popularity, n: u32, draws: usize) -> Vec<usize> {
        let mut g = RequestGen::new(TrafficCfg {
            sources: n,
            tags: 4,
            popularity: pop,
            unexpected_frac: 0.5,
            churn: None,
            seed: 7,
        });
        let mut c = vec![0usize; n as usize];
        for _ in 0..draws {
            c[g.next_request().source as usize] += 1;
        }
        c
    }

    #[test]
    fn uniform_is_flat_and_zipf_is_skewed() {
        let u = counts(Popularity::Uniform, 16, 32_000);
        let (&umin, &umax) = (u.iter().min().unwrap(), u.iter().max().unwrap());
        assert!(
            (umax as f64) < 1.5 * umin as f64,
            "uniform spread too wide: {umin}..{umax}"
        );
        let z = counts(Popularity::Zipf { s: 1.0 }, 16, 32_000);
        assert!(
            z[0] > 4 * z[8],
            "zipf(1) head {} must dominate mid-rank {}",
            z[0],
            z[8]
        );
        // Zipf with s=0 *is* uniform: identical stream, same seed.
        assert_eq!(
            counts(Popularity::Zipf { s: 0.0 }, 16, 2000),
            counts(Popularity::Uniform, 16, 2000)
        );
    }

    #[test]
    fn zipf_head_probability_matches_harmonic_weight() {
        // For n=4, s=1: P(0) = 1 / (1 + 1/2 + 1/3 + 1/4) = 0.48.
        let z = ZipfSampler::new(4, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let head = (0..50_000).filter(|_| z.sample(&mut rng) == 0).count();
        let p = head as f64 / 50_000.0;
        assert!((p - 0.48).abs() < 0.02, "head probability {p}");
    }

    #[test]
    fn churn_rotates_the_hot_source_without_changing_shape() {
        let cfg = TrafficCfg {
            sources: 64,
            tags: 4,
            popularity: Popularity::Zipf { s: 1.2 },
            unexpected_frac: 0.0,
            churn: Some(Churn {
                every: 5000,
                stride: 13,
            }),
            seed: 11,
        };
        let mut g = RequestGen::new(cfg);
        let hot_of = |g: &mut RequestGen| {
            let mut c = vec![0usize; 64];
            for _ in 0..5000 {
                c[g.next_request().source as usize] += 1;
            }
            (0..64).max_by_key(|&i| c[i]).unwrap()
        };
        let h0 = hot_of(&mut g);
        let h1 = hot_of(&mut g);
        let h2 = hot_of(&mut g);
        assert_eq!(h0, 0, "hottest rank starts at source 0");
        assert_eq!(h1, 13, "one rotation of stride 13");
        assert_eq!(h2, 26, "two rotations");
    }

    #[test]
    fn stream_is_deterministic_and_cycles_tags() {
        let cfg = TrafficCfg::new(Popularity::Zipf { s: 1.0 }, 99);
        let mut a = RequestGen::new(cfg.clone());
        let mut b = RequestGen::new(cfg);
        for i in 0..500 {
            let (ra, rb) = (a.next_request(), b.next_request());
            assert_eq!(ra, rb);
            assert_eq!(ra.tag, i % 8);
        }
    }

    #[test]
    #[should_panic(expected = "exponent must be >= 0")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(4, -1.0);
    }
}
