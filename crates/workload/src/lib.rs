//! # spc-workload — service-shaped traffic for the matching engine
//!
//! Everything the repo drove before this crate was an HPC motif: fixed
//! neighbour exchanges, uniform partners, lockstep phases. The paper's
//! claims, though, are about *network processing* — and the north star
//! ("millions of users") means skewed popularity, open-loop pressure, and
//! tail latency, not barriers. This crate supplies that load shape:
//!
//! * [`zipf`] — Zipf-skewed source popularity with optional hot-key
//!   *churn* (the hot set rotates mid-run, the way front-end traffic
//!   shifts), degenerating to uniform at exponent 0;
//! * [`des`] — open-loop (Poisson arrivals, optionally bursty) and
//!   closed-loop (fixed client window) discrete-event queueing around a
//!   caller-supplied service function, with a **bounded run queue** that
//!   rejects arrivals at capacity — the latency/rejection model;
//! * [`drive`] — adapters that turn a [`Request`] stream into
//!   search-else-append operations against a bounded
//!   [`MatchEngine`](spc_core::MatchEngine), keeping a standing receive
//!   window so searches run at realistic depth.
//!
//! Determinism is inherited from `spc-rng`: a scenario is reproducible from
//! its config alone when the service function is deterministic (the tests
//! use synthetic service models; the `traffic_gate` bench bin plugs in
//! wall-clock measurement of the real engines).

#![warn(missing_docs)]

pub mod des;
pub mod drive;
pub mod zipf;

pub use des::{closed_loop, open_loop, Burst, ClosedLoopCfg, LoopResult, OpenLoopCfg};
pub use drive::{execute, prime_standing, EngineTally};
pub use zipf::{Churn, Popularity, RequestGen, TrafficCfg, ZipfSampler};

/// One service request: a message flow from `source` with `tag`.
///
/// `unexpected` selects the arrival ordering the engine sees: `false` is
/// the expected path (receive posted before the message arrives), `true`
/// the unexpected path (message first, receive chases it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Sending rank, drawn from the scenario's popularity distribution.
    pub source: i32,
    /// Message tag (cycled through the configured tag space).
    pub tag: i32,
    /// `true` ⇒ arrival-first (unexpected-message path).
    pub unexpected: bool,
}
