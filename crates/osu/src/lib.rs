//! # spc-osu — the modified OSU microbenchmarks (§4.1)
//!
//! Reimplements the paper's modified `osu_bw`/`osu_latency` semantics:
//!
//! 1. an MPI barrier guarantees receives are **pre-posted** (fast path);
//! 2. the cache is **cleared between iterations**, emulating a computation
//!    phase in a bulk-synchronous application;
//! 3. the master thread is pinned (here: the one simulated compute core);
//! 4. **unmatched entries pad the queue** to the configured search length.
//!
//! The receiver's matching work runs as real `spc-core` engine operations
//! over the `spc-cachesim` hierarchy; transfer time comes from
//! `spc-simnet`. The result is the bandwidth/latency surface of
//! Figures 4–7: locality configurations separate at small messages and
//! deep queues, and converge once the wire saturates.

#![warn(missing_docs)]

pub mod bw;

pub use bw::{bandwidth_mibps, latency_us, window_recv_costs, OsuConfig};
