//! The modified OSU bandwidth/latency kernels.

use spc_cachesim::{ArchProfile, LocalityConfig, MemSim, Structure};
use spc_core::dynengine::{DynEngine, EngineKind};
use spc_core::entry::{Envelope, RecvSpec};
use spc_simnet::NetProfile;

/// One benchmark setup: machine, fabric, locality configuration.
#[derive(Clone, Copy, Debug)]
pub struct OsuConfig {
    /// Processor/memory model.
    pub arch: ArchProfile,
    /// Interconnect model.
    pub net: NetProfile,
    /// Queue structure + hot caching.
    pub locality: LocalityConfig,
    /// Messages in flight per iteration (stock `osu_bw` uses 64; the
    /// paper's modifications barrier and clear the cache around each
    /// iteration's window, so the first message of a window matches cold
    /// and later ones ride the traversal's own warmth).
    pub window: u32,
}

impl OsuConfig {
    /// The paper's Sandy Bridge testbed.
    pub fn sandy_bridge(locality: LocalityConfig) -> Self {
        Self {
            arch: ArchProfile::sandy_bridge(),
            net: NetProfile::qlogic_qdr(),
            locality,
            window: 64,
        }
    }

    /// The paper's Broadwell testbed.
    pub fn broadwell(locality: LocalityConfig) -> Self {
        Self {
            arch: ArchProfile::broadwell(),
            net: NetProfile::omnipath(),
            locality,
            window: 64,
        }
    }

    fn engine_kind(&self) -> EngineKind {
        match self.locality.structure {
            Structure::Baseline => EngineKind::Baseline,
            Structure::Lla(n) => EngineKind::Lla { arity: n },
        }
    }
}

/// Per-message receiver CPU costs (nanoseconds) for one iteration window:
/// the queue is padded to `queue_depth` unmatched entries, `window` receives
/// are pre-posted behind them, the cache is cleared (compute phase), the
/// heater restores its regions if hot caching is on, and then the window's
/// arrivals are matched in order.
///
/// The first match is fully cold; later matches ride whatever the earlier
/// traversals left in cache — exactly the warm/cold mix a real window sees.
pub fn window_recv_costs(cfg: &OsuConfig, queue_depth: u32) -> Vec<f64> {
    let mut eng = DynEngine::new(cfg.engine_kind());
    eng.pad_prq(queue_depth as usize);
    for m in 0..cfg.window {
        eng.post_recv(RecvSpec::new(1, m as i32, 0), m as u64);
    }

    let mut mem = match hot_config(&cfg.locality) {
        Some(h) => {
            let mut m = MemSim::with_hot_cache(cfg.arch, h);
            m.set_heat_regions(&eng.heat_regions());
            m
        }
        None => MemSim::new(cfg.arch),
    };
    // Compute phase: caches wiped; heater (if any) has time to re-warm.
    mem.flush();
    mem.advance(hot_config(&cfg.locality).map_or(1.0, |h| h.period_ns + 1.0));

    let overhead = mem.mutation_overhead_ns();
    let mut costs = Vec::with_capacity(cfg.window as usize);
    for m in 0..cfg.window {
        let t0 = mem.time_ns();
        let out = eng.arrival_sink(Envelope::new(1, m as i32, 0), m as u64, &mut mem);
        debug_assert!(
            matches!(out, spc_core::engine::ArrivalOutcome::MatchedPosted { .. }),
            "window receives are pre-posted"
        );
        costs.push(mem.time_ns() - t0 + overhead);
    }
    costs
}

fn hot_config(loc: &LocalityConfig) -> Option<spc_cachesim::HotCacheConfig> {
    if !loc.hot_cache {
        return None;
    }
    Some(match loc.structure {
        Structure::Lla(_) => spc_cachesim::HotCacheConfig::with_element_pool(),
        Structure::Baseline => spc_cachesim::HotCacheConfig::default(),
    })
}

/// The modified `osu_bw`: reported bandwidth in MiB/s for one message size
/// and padded queue depth.
pub fn bandwidth_mibps(cfg: &OsuConfig, msg_bytes: u64, queue_depth: u32) -> f64 {
    let costs = window_recv_costs(cfg, queue_depth);
    let avg_cpu = costs.iter().sum::<f64>() / costs.len() as f64;
    // The modification adds a pre-posting barrier (and the cache clear)
    // around every iteration's window.
    let iter_ns = cfg.net.window_ns(cfg.window as u64, msg_bytes, avg_cpu) + cfg.net.barrier_ns(2);
    let bytes = cfg.window as u64 * msg_bytes;
    bytes as f64 / iter_ns * 1e9 / (1024.0 * 1024.0)
}

/// The modified `osu_latency`: one-way half round-trip latency in
/// microseconds (ping-pong, cache cleared each iteration).
pub fn latency_us(cfg: &OsuConfig, msg_bytes: u64, queue_depth: u32) -> f64 {
    // A ping-pong iteration matches exactly one message per side against
    // the padded queue, fully cold.
    let single = OsuConfig { window: 1, ..*cfg };
    let cpu = window_recv_costs(&single, queue_depth)[0];
    (cfg.net.msg_ns(msg_bytes) + cpu) / 1000.0
}

/// The message-size sweep of Figures 4a/5a/6a/7a (1 B … 1 MiB, powers of
/// two).
pub fn osu_sizes() -> Vec<u64> {
    (0..=20).map(|i| 1u64 << i).collect()
}

/// The queue-depth sweep of Figures 4b/4c etc. (1 … 8192, powers of two).
pub fn osu_depths() -> Vec<u32> {
    (0..=13).map(|i| 1u32 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snb(loc: LocalityConfig) -> OsuConfig {
        OsuConfig::sandy_bridge(loc)
    }

    #[test]
    fn first_window_message_is_coldest() {
        // With a 64-message window (stock OSU), only the first search runs
        // against a cold cache.
        let costs = window_recv_costs(
            &OsuConfig {
                window: 64,
                ..snb(LocalityConfig::baseline())
            },
            512,
        );
        assert!(
            costs[0] > costs[32],
            "cold {:.0} vs warm {:.0}",
            costs[0],
            costs[32]
        );
        assert_eq!(costs.len(), 64);
        assert!(costs.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn large_messages_converge_across_configurations() {
        // Figure 4a/5a: "this appears to be limited for large messages and
        // the network's data transfer speed becomes the bottleneck".
        let size = 1 << 20;
        let base = bandwidth_mibps(&snb(LocalityConfig::baseline()), size, 1024);
        let lla = bandwidth_mibps(&snb(LocalityConfig::lla(8)), size, 1024);
        let ratio = lla / base;
        assert!((0.95..1.3).contains(&ratio), "ratio {ratio}");
        // And both sit near the calibrated plateau (~3300 MiB/s).
        assert!(base > 2800.0 && base < 3600.0, "plateau {base}");
    }

    #[test]
    fn small_messages_separate_by_locality() {
        // Figure 4b: large jump baseline → LLA at deep queues.
        let base = bandwidth_mibps(&snb(LocalityConfig::baseline()), 1, 1024);
        let lla8 = bandwidth_mibps(&snb(LocalityConfig::lla(8)), 1, 1024);
        assert!(
            lla8 > 2.0 * base,
            "LLA-8 {lla8:.4} MiB/s should be >2x baseline {base:.4}"
        );
    }

    #[test]
    fn deeper_queues_hurt_small_message_bandwidth() {
        let cfg = snb(LocalityConfig::baseline());
        let shallow = bandwidth_mibps(&cfg, 1, 1);
        let deep = bandwidth_mibps(&cfg, 1, 4096);
        assert!(
            shallow > 5.0 * deep,
            "shallow {shallow:.4} vs deep {deep:.4}"
        );
    }

    #[test]
    fn lla_sweep_knees_at_8() {
        // Figure 4b: gains stop around 8 entries per array.
        let bw = |n| bandwidth_mibps(&snb(LocalityConfig::lla(n)), 1, 1024);
        let b2 = bw(2);
        let b8 = bw(8);
        let b32 = bw(32);
        assert!(b8 > b2, "LLA-8 {b8:.4} over LLA-2 {b2:.4}");
        assert!(
            (b32 - b8).abs() / b8 < 0.3,
            "knee: LLA-8 {b8:.4} vs LLA-32 {b32:.4}"
        );
    }

    #[test]
    fn hot_caching_helps_snb_hurts_bdw() {
        // The headline temporal-locality contrast of Figures 6 vs 7.
        let snb_base = bandwidth_mibps(&snb(LocalityConfig::baseline()), 1, 512);
        let snb_hc = bandwidth_mibps(&snb(LocalityConfig::hc()), 1, 512);
        assert!(
            snb_hc > snb_base,
            "SNB: HC {snb_hc:.4} should beat {snb_base:.4}"
        );

        let bdw_base = bandwidth_mibps(&OsuConfig::broadwell(LocalityConfig::baseline()), 1, 512);
        let bdw_hc = bandwidth_mibps(&OsuConfig::broadwell(LocalityConfig::hc()), 1, 512);
        assert!(
            bdw_hc < bdw_base * 1.05,
            "BDW: HC {bdw_hc:.4} should not beat baseline {bdw_base:.4} meaningfully"
        );
    }

    #[test]
    fn hc_plus_lla_is_best_on_snb_at_mid_depths() {
        // Figure 6b: HC+LLA leads at small-to-medium list lengths.
        let combos = [
            LocalityConfig::baseline(),
            LocalityConfig::hc(),
            LocalityConfig::lla(2),
            LocalityConfig::hc_lla(2),
        ];
        let bws: Vec<f64> = combos
            .iter()
            .map(|&l| bandwidth_mibps(&snb(l), 1, 256))
            .collect();
        let best = bws.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(best, bws[3], "HC+LLA should lead on SNB: {bws:?}");
    }

    #[test]
    fn hc_converges_with_baseline_at_large_queue_lengths() {
        // §4.3: "indicated by the convergence of the cache heating results
        // with their baselines at large queue lengths".
        let base = bandwidth_mibps(&snb(LocalityConfig::baseline()), 1, 1024);
        let hc = bandwidth_mibps(&snb(LocalityConfig::hc()), 1, 1024);
        assert!(
            ((hc - base) / base).abs() < 0.10,
            "HC {hc:.4} and baseline {base:.4} should converge at depth 1024"
        );
    }

    #[test]
    fn latency_reflects_depth_and_size() {
        let cfg = snb(LocalityConfig::baseline());
        let l_shallow = latency_us(&cfg, 8, 1);
        let l_deep = latency_us(&cfg, 8, 4096);
        assert!(l_deep > 2.0 * l_shallow);
        let l_big = latency_us(&cfg, 1 << 20, 1);
        assert!(l_big > 250.0, "1 MiB at ~3.3 GiB/s is ~300 us, got {l_big}");
    }

    #[test]
    fn sweeps_cover_paper_axes() {
        assert_eq!(osu_sizes().first(), Some(&1));
        assert_eq!(osu_sizes().last(), Some(&(1 << 20)));
        assert_eq!(osu_depths().last(), Some(&8192));
    }
}
