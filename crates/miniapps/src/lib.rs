//! # spc-miniapps — proxy applications (§4.4, §4.5)
//!
//! Proxies for the three codes the paper measures, built on the
//! representative-rank method: the matching path runs as *real*
//! `spc-core` engine operations over the `spc-cachesim` hierarchy for one
//! representative rank per configuration (all ranks do identical work in
//! these BSP codes), while compute phases and collectives are charged from
//! calibrated analytic models. This keeps the locality-dependent part —
//! the entire subject of the paper — fully mechanistic while letting the
//! proxies run at 8192-rank scale in seconds.
//!
//! * [`amg`] — AMG2013: weak-scaling algebraic multigrid V-cycles whose
//!   coarse levels densify the communication graph (Figure 8);
//! * [`minife`] — MiniFE: conjugate-gradient halo exchange at 512 ranks
//!   with padded match lists (Figure 9);
//! * [`minimd`] — MiniMD: staged molecular-dynamics ghost exchange, the
//!   short-ordered-list workload where locality buys nothing (§4.4 names it
//!   but publishes no figure — the null result);
//! * [`fds`] — Fire Dynamics Simulator: pressure-solver exchanges whose
//!   match lists grow with scale and are searched deep ("does not
//!   typically match the first element"), Figure 10.

#![warn(missing_docs)]

pub mod amg;
pub mod common;
pub mod fds;
pub mod minife;
pub mod minimd;

pub use common::{AppSetup, RepRank};
