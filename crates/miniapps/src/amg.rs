//! AMG2013 proxy: algebraic multigrid V-cycles (Figure 8).
//!
//! AMG weak-scales with "relatively trivial load balancing"; its defining
//! communication property is that *coarse* grid levels densify the
//! communication graph — each coarsening roughly doubles a rank's neighbour
//! count while halving its compute — so the matching engine sees its
//! deepest queues near the bottom of the V-cycle, and the effect grows with
//! job size. The DOE-recommended configuration is bandwidth-sensitive
//! rather than message-rate-sensitive, which is why the paper reports only
//! a modest (2.9% at 1024 ranks) gain from spacial locality.

use spc_cachesim::{ArchProfile, LocalityConfig};
use spc_simnet::NetProfile;

use crate::common::{AppSetup, ArrivalOrder, RepRank};

/// AMG proxy parameters.
#[derive(Clone, Copy, Debug)]
pub struct AmgParams {
    /// Total ranks (the paper scales 128 → 1024).
    pub ranks: u32,
    /// V-cycles per solve.
    pub cycles: u32,
    /// Fine-level neighbours (the 3-D 7-point coupling of the recommended
    /// problem).
    pub base_neighbors: u32,
    /// Neighbour cap at coarse levels (a rank cannot exchange with more
    /// than half the job).
    pub max_neighbors_fraction: f64,
    /// Fine-level compute per rank per cycle, nanoseconds.
    pub compute_ns: f64,
    /// Fine-level message payload bytes.
    pub bytes_per_msg: u64,
    /// RNG seed.
    pub seed: u64,
}

impl AmgParams {
    /// The paper's recommended large problem, weak-scaled.
    pub fn paper_scale(ranks: u32) -> Self {
        Self {
            ranks,
            cycles: 30,
            base_neighbors: 6,
            max_neighbors_fraction: 0.35,
            compute_ns: 108e6,
            bytes_per_msg: 64 * 1024,
            seed: 0xA319,
        }
    }

    /// Fast test configuration.
    pub fn small(ranks: u32) -> Self {
        Self {
            cycles: 3,
            compute_ns: 5e6,
            ..Self::paper_scale(ranks)
        }
    }

    /// Multigrid depth: levels until the coarse problem is one block per
    /// rank-neighbourhood (grows logarithmically with job size).
    pub fn levels(&self) -> u32 {
        let l = 32 - (self.ranks.max(2) - 1).leading_zeros();
        (l / 2 + 4).min(10)
    }

    /// Neighbour count at level `l` (level 0 is finest).
    pub fn neighbors_at(&self, l: u32) -> u32 {
        let cap = (self.ranks as f64 * self.max_neighbors_fraction) as u32;
        (self.base_neighbors << l).min(cap.max(self.base_neighbors))
    }
}

/// Result of one proxy run.
#[derive(Clone, Copy, Debug)]
pub struct AmgResult {
    /// Total execution time, seconds.
    pub seconds: f64,
    /// Time spent in matching, seconds.
    pub match_seconds: f64,
    /// Deepest level's neighbour count (match-list scale indicator).
    pub max_neighbors: u32,
}

/// Runs the proxy on Broadwell/OmniPath under the given locality
/// configuration.
pub fn run(p: AmgParams, locality: LocalityConfig) -> AmgResult {
    run_on(
        p,
        AppSetup {
            arch: ArchProfile::broadwell(),
            net: NetProfile::omnipath(),
            locality,
        },
    )
}

/// Runs the proxy on an explicit setup.
pub fn run_on(p: AmgParams, setup: AppSetup) -> AmgResult {
    let mut rank = RepRank::new(setup, 0, p.seed);
    let mut total_ns = 0.0;
    let mut match_ns = 0.0;
    let levels = p.levels();
    for _cycle in 0..p.cycles {
        // Down-sweep and up-sweep each exchange at every level.
        for half in 0..2 {
            for l in 0..levels {
                let n = p.neighbors_at(l);
                // Coarse arrivals come from many loosely-synchronized
                // peers: scheduler-random order.
                let m = rank.exchange(n, ArrivalOrder::Shuffled);
                match_ns += m;
                // Compute halves per level; message size shrinks per level.
                let bytes = (p.bytes_per_msg >> l).max(64);
                let wire = setup.net.wire_ns(n as u64 * bytes) + setup.net.latency_ns;
                total_ns += m + wire + p.compute_ns / (1 << l) as f64;
                let _ = half;
            }
        }
        // Residual-norm check.
        total_ns += setup.net.tree_collective_ns(p.ranks, 8);
    }
    AmgResult {
        seconds: total_ns / 1e9,
        match_seconds: match_ns / 1e9,
        max_neighbors: p.neighbors_at(levels - 1),
    }
}

/// The Figure 8 x-axis (weak-scaling process counts).
pub fn figure8_ranks() -> Vec<u32> {
    vec![128, 256, 512, 1024]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_levels_densify_and_cap() {
        let p = AmgParams::paper_scale(1024);
        assert_eq!(p.neighbors_at(0), 6);
        assert!(p.neighbors_at(p.levels() - 1) > 100);
        assert!(p.neighbors_at(p.levels() - 1) <= 512);
        // Small jobs cap earlier.
        let s = AmgParams::paper_scale(128);
        assert!(s.neighbors_at(s.levels() - 1) <= 64);
    }

    #[test]
    fn lla_gain_at_1024_matches_papers_band() {
        // Figure 8: "runtime improvements for increased spacial locality
        // at 2.9%" at 1024 ranks.
        // Relative gain is invariant to the cycle count; use fewer cycles
        // for test speed.
        let p = AmgParams {
            cycles: 2,
            ..AmgParams::paper_scale(1024)
        };
        let base = run(p, LocalityConfig::baseline());
        let lla = run(p, LocalityConfig::lla(2));
        let gain = (base.seconds - lla.seconds) / base.seconds;
        assert!(
            (0.01..0.08).contains(&gain),
            "gain {gain:.4} (base {:.1}s lla {:.1}s)",
            base.seconds,
            lla.seconds
        );
    }

    #[test]
    fn gain_grows_with_scale() {
        let gain = |ranks| {
            let p = AmgParams {
                cycles: 2,
                ..AmgParams::paper_scale(ranks)
            };
            let b = run(p, LocalityConfig::baseline());
            let l = run(p, LocalityConfig::lla(2));
            (b.seconds - l.seconds) / b.seconds
        };
        assert!(gain(1024) > gain(128));
    }

    #[test]
    fn runtime_in_papers_range_and_weakly_scaling() {
        // Figure 8 shows ~12–15 s across 128–1024 ranks; check a 2-cycle
        // slice of the 30-cycle solve (runtime is linear in cycles).
        let r128 = run(
            AmgParams {
                cycles: 2,
                ..AmgParams::paper_scale(128)
            },
            LocalityConfig::baseline(),
        );
        let r1024 = run(
            AmgParams {
                cycles: 2,
                ..AmgParams::paper_scale(1024)
            },
            LocalityConfig::baseline(),
        );
        assert!(
            (8.0..20.0).contains(&(r128.seconds * 15.0)),
            "{:.1}",
            r128.seconds
        );
        assert!(
            (8.0..20.0).contains(&(r1024.seconds * 15.0)),
            "{:.1}",
            r1024.seconds
        );
        assert!(
            r1024.seconds > r128.seconds,
            "coarse-level comm grows with scale"
        );
    }

    #[test]
    fn small_configuration_is_fast_and_consistent() {
        let r = run(AmgParams::small(64), LocalityConfig::baseline());
        assert!(r.seconds > 0.0);
        assert!(r.match_seconds < r.seconds);
    }
}
