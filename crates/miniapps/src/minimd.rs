//! MiniMD proxy: molecular-dynamics spatial decomposition (§4.4 names
//! MiniMD among the examined mini-apps but plots no figure for it — the
//! expected null result this proxy documents).
//!
//! LAMMPS-style staged exchange: each timestep swaps ghost atoms with two
//! neighbours per dimension, one dimension at a time, *waiting between
//! stages* (the staged scheme needs forwarded corners). Match lists
//! therefore never exceed two entries and always match in order — the
//! best-case workload for the traditional list, where locality engineering
//! has nothing to win.

use spc_cachesim::{ArchProfile, LocalityConfig};
use spc_simnet::NetProfile;

use crate::common::{AppSetup, ArrivalOrder, RepRank};

/// MiniMD proxy parameters.
#[derive(Clone, Copy, Debug)]
pub struct MiniMdParams {
    /// Total ranks.
    pub ranks: u32,
    /// Timesteps to run.
    pub steps: u32,
    /// Neighbour-list rebuild interval (rebuild steps exchange twice:
    /// borders + ghosts).
    pub rebuild_every: u32,
    /// Ghost-atom message payload bytes.
    pub bytes_per_msg: u64,
    /// Force computation per rank per step, nanoseconds.
    pub compute_ns: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MiniMdParams {
    /// A representative Lennard-Jones run shape.
    pub fn paper_scale(ranks: u32) -> Self {
        Self {
            ranks,
            steps: 1000,
            rebuild_every: 20,
            bytes_per_msg: 48 * 1024,
            compute_ns: 4.5e6,
            seed: 0x3D,
        }
    }

    /// Fast test configuration.
    pub fn small(ranks: u32) -> Self {
        Self {
            steps: 50,
            compute_ns: 1e5,
            ..Self::paper_scale(ranks)
        }
    }
}

/// Result of one proxy run.
#[derive(Clone, Copy, Debug)]
pub struct MiniMdResult {
    /// Total execution time, seconds.
    pub seconds: f64,
    /// Time spent in matching, seconds.
    pub match_seconds: f64,
    /// Mean PRQ search depth (stays ~1 by construction).
    pub mean_depth: f64,
}

/// Runs the proxy on Broadwell/OmniPath under the given locality
/// configuration.
pub fn run(p: MiniMdParams, locality: LocalityConfig) -> MiniMdResult {
    run_on(
        p,
        AppSetup {
            arch: ArchProfile::broadwell(),
            net: NetProfile::omnipath(),
            locality,
        },
    )
}

/// Runs the proxy on an explicit setup.
pub fn run_on(p: MiniMdParams, setup: AppSetup) -> MiniMdResult {
    let mut rank = RepRank::new(setup, 0, p.seed);
    let mut total_ns = 0.0;
    let mut match_ns = 0.0;
    for step in 0..p.steps {
        let exchanges = if step % p.rebuild_every == 0 { 2 } else { 1 };
        for _ in 0..exchanges {
            // Three staged swaps of two messages each; the stage boundary
            // means at most two receives are ever outstanding.
            for _dim in 0..3 {
                let m = rank.exchange(2, ArrivalOrder::InOrder);
                match_ns += m;
                let wire = setup.net.wire_ns(2 * p.bytes_per_msg) + setup.net.latency_ns;
                total_ns += m + wire;
            }
        }
        total_ns += p.compute_ns;
        // Thermostat / energy reduction every few steps.
        if step % 10 == 0 {
            total_ns += setup.net.tree_collective_ns(p.ranks, 16);
        }
    }
    MiniMdResult {
        seconds: total_ns / 1e9,
        match_seconds: match_ns / 1e9,
        mean_depth: rank.mean_depth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_lists_stay_trivially_short() {
        let r = run(MiniMdParams::small(512), LocalityConfig::baseline());
        assert!(
            r.mean_depth <= 2.0,
            "staged exchange keeps depth ~1, got {}",
            r.mean_depth
        );
    }

    #[test]
    fn locality_buys_nothing_here() {
        // The null result: with two-entry in-order lists, LLA and baseline
        // are indistinguishable at the application level — consistent with
        // the paper examining MiniMD but publishing no figure for it.
        let p = MiniMdParams {
            steps: 200,
            ..MiniMdParams::small(512)
        };
        let base = run(p, LocalityConfig::baseline());
        let lla = run(p, LocalityConfig::lla(2));
        let gain = (base.seconds - lla.seconds) / base.seconds;
        assert!(
            gain.abs() < 0.005,
            "gain {gain:.5} should be negligible (base {:.4}s lla {:.4}s)",
            base.seconds,
            lla.seconds
        );
    }

    #[test]
    fn matching_is_an_insignificant_fraction() {
        let r = run(MiniMdParams::small(512), LocalityConfig::baseline());
        assert!(
            r.match_seconds / r.seconds < 0.02,
            "{}",
            r.match_seconds / r.seconds
        );
    }

    #[test]
    fn rebuild_steps_do_extra_communication() {
        let no_rebuild = run(
            MiniMdParams {
                rebuild_every: u32::MAX,
                ..MiniMdParams::small(512)
            },
            LocalityConfig::baseline(),
        );
        let frequent = run(
            MiniMdParams {
                rebuild_every: 2,
                ..MiniMdParams::small(512)
            },
            LocalityConfig::baseline(),
        );
        assert!(frequent.seconds > no_rebuild.seconds);
    }
}
