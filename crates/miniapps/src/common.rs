//! The representative-rank execution engine shared by the proxies.

use spc_rng::SeedableRng;
use spc_rng::SliceRandom;

use spc_cachesim::{ArchProfile, HotCacheConfig, LocalityConfig, MemSim, Structure};
use spc_core::dynengine::{DynEngine, EngineKind};
use spc_core::engine::ArrivalOutcome;
use spc_core::entry::{Envelope, RecvSpec};
use spc_simnet::NetProfile;

/// Machine + fabric + locality configuration for one app run.
#[derive(Clone, Copy, Debug)]
pub struct AppSetup {
    /// Processor/memory model.
    pub arch: ArchProfile,
    /// Interconnect model.
    pub net: NetProfile,
    /// Queue structure + hot caching.
    pub locality: LocalityConfig,
}

impl AppSetup {
    /// Engine kind matching the locality structure.
    pub fn engine_kind(&self) -> EngineKind {
        match self.locality.structure {
            Structure::Baseline => EngineKind::Baseline,
            Structure::Lla(n) => EngineKind::Lla { arity: n },
        }
    }

    fn hot_config(&self) -> Option<HotCacheConfig> {
        if !self.locality.hot_cache {
            return None;
        }
        Some(match self.locality.structure {
            Structure::Lla(_) => HotCacheConfig::with_element_pool(),
            Structure::Baseline => HotCacheConfig::default(),
        })
    }
}

/// Cost in nanoseconds, per active region, of removing an element from the
/// heater's region list, charged on queue *removals* when hot caching runs
/// without the element pool: the remover must wait out the heater's pass
/// over the region queue under the spin lock before MPI may deallocate the
/// node (§4.5: "lock contention as we must remove elements from the hot
/// caching list"), and both the pass and the removal search scale with the
/// region-queue length.
const HC_LOCK_NS_PER_REGION: f64 = 150.0;
/// Flat registration cost of an insertion (append to the region list).
const HC_LOCK_INSERT_NS: f64 = 60.0;

/// One rank's matching engine driven over the cache simulator, with
/// hot-cache bookkeeping. All BSP ranks in these proxies do statistically
/// identical work, so one representative rank prices the per-rank CPU cost
/// exactly.
pub struct RepRank {
    setup: AppSetup,
    eng: DynEngine,
    mem: MemSim,
    rng: spc_rng::StdRng,
}

impl RepRank {
    /// Builds the representative rank; `pad` pre-loads the PRQ with
    /// unmatched entries (the paper's queue-length knob).
    pub fn new(setup: AppSetup, pad: usize, seed: u64) -> Self {
        let mut eng = DynEngine::new(setup.engine_kind());
        eng.pad_prq(pad);
        let mem = match setup.hot_config() {
            Some(h) => {
                let mut m = MemSim::with_hot_cache(setup.arch, h);
                m.set_heat_regions(&eng.heat_regions());
                m
            }
            None => MemSim::new(setup.arch),
        };
        Self {
            setup,
            eng,
            mem,
            rng: spc_rng::StdRng::seed_from_u64(seed),
        }
    }

    /// Hot-cache overhead of appending one entry.
    fn hc_insert_ns(&self) -> f64 {
        if !self.setup.locality.hot_cache {
            return 0.0;
        }
        match self.setup.locality.structure {
            Structure::Lla(_) => HotCacheConfig::with_element_pool().mutation_overhead_ns,
            Structure::Baseline => HC_LOCK_INSERT_NS,
        }
    }

    /// Hot-cache overhead of removing one entry at the current region-queue
    /// length.
    fn hc_remove_ns(&self) -> f64 {
        if !self.setup.locality.hot_cache {
            return 0.0;
        }
        match self.setup.locality.structure {
            // Element pool: whole chunks stay registered; removal is free.
            Structure::Lla(_) => HotCacheConfig::with_element_pool().mutation_overhead_ns,
            // Baseline: every node is its own region; the remover waits out
            // the heater's pass over the whole region queue.
            Structure::Baseline => HC_LOCK_NS_PER_REGION * (1.0 + self.eng.prq_len() as f64),
        }
    }

    /// Runs one communication phase: `n` receives are posted, then `n`
    /// matching messages arrive in the given order, with application
    /// compute *between* arrivals.
    ///
    /// That interleaved compute is what makes matching memory-latency-bound
    /// in real applications: each arrival finds the match list evicted by
    /// the intervening computation's working set (modelled by
    /// [`MemSim::evict_regions`]), while the heater — if active — has had
    /// time to pull the list back into the shared L3.
    ///
    /// Returns this rank's matching CPU time in nanoseconds, including
    /// hot-cache region-list synchronization.
    pub fn exchange(&mut self, n: u32, order: ArrivalOrder) -> f64 {
        // Compute phase boundary.
        self.mem.flush();
        self.mem
            .advance(self.setup.hot_config().map_or(1.0, |h| h.period_ns + 1.0));

        let t0 = self.mem.time_ns();
        let mut overhead = 0.0;
        // Post receives (tags 0..n from the peer set, modelled as rank 1).
        for m in 0..n {
            self.eng.post_recv(RecvSpec::new(1, m as i32, 0), m as u64);
            overhead += self.hc_insert_ns();
        }
        // Arrivals, with the list cold (and re-heated, if hot caching is
        // on) before each one.
        let mut arrivals: Vec<u32> = (0..n).collect();
        match order {
            ArrivalOrder::InOrder => {}
            ArrivalOrder::Reversed => arrivals.reverse(),
            ArrivalOrder::Shuffled => arrivals.shuffle(&mut self.rng),
        }
        for m in arrivals {
            let regions = self.eng.heat_regions();
            self.mem.evict_regions(&regions);
            if self.setup.locality.hot_cache {
                self.mem.set_heat_regions(&regions);
                self.mem.heat_now();
            }
            overhead += self.hc_remove_ns();
            let out = self
                .eng
                .arrival_sink(Envelope::new(1, m as i32, 0), m as u64, &mut self.mem);
            debug_assert!(matches!(out, ArrivalOutcome::MatchedPosted { .. }));
        }
        (self.mem.time_ns() - t0) + overhead
    }

    /// Current PRQ length (pads persist across exchanges).
    pub fn prq_len(&self) -> usize {
        self.eng.prq_len()
    }

    /// Mean PRQ search depth observed so far.
    pub fn mean_depth(&self) -> f64 {
        self.eng.stats().prq_search.mean()
    }
}

/// How an exchange's arrivals are ordered relative to the posting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Arrivals match head-first (well-synchronized neighbours).
    InOrder,
    /// Arrivals match tail-first — FDS's "does not typically match the
    /// first element in the list".
    Reversed,
    /// Scheduler-random (multithreaded senders).
    Shuffled,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(loc: LocalityConfig) -> AppSetup {
        AppSetup {
            arch: ArchProfile::nehalem(),
            net: NetProfile::mellanox_qdr(),
            locality: loc,
        }
    }

    #[test]
    fn exchange_returns_positive_time_and_drains() {
        let mut r = RepRank::new(setup(LocalityConfig::baseline()), 0, 1);
        let t = r.exchange(32, ArrivalOrder::Shuffled);
        assert!(t > 0.0);
        assert_eq!(r.prq_len(), 0);
    }

    #[test]
    fn reversed_arrivals_search_deeper_than_in_order() {
        let mut a = RepRank::new(setup(LocalityConfig::baseline()), 0, 1);
        let mut b = RepRank::new(setup(LocalityConfig::baseline()), 0, 1);
        a.exchange(64, ArrivalOrder::InOrder);
        b.exchange(64, ArrivalOrder::Reversed);
        assert!(b.mean_depth() > 5.0 * a.mean_depth());
    }

    #[test]
    fn padding_persists_and_deepens_searches() {
        let mut r = RepRank::new(setup(LocalityConfig::baseline()), 100, 1);
        r.exchange(4, ArrivalOrder::InOrder);
        assert_eq!(r.prq_len(), 100);
        assert!(r.mean_depth() > 100.0);
    }

    #[test]
    fn lla_exchange_is_cheaper_at_depth() {
        let mut base = RepRank::new(setup(LocalityConfig::baseline()), 0, 1);
        let mut lla = RepRank::new(setup(LocalityConfig::lla(2)), 0, 1);
        let tb = base.exchange(256, ArrivalOrder::Reversed);
        let tl = lla.exchange(256, ArrivalOrder::Reversed);
        assert!(tl < tb, "LLA {tl:.0} vs baseline {tb:.0}");
    }

    #[test]
    fn hc_lock_overhead_scales_with_queue_length() {
        let hc = setup(LocalityConfig::hc());
        let mut short = RepRank::new(hc, 0, 1);
        let mut long = RepRank::new(hc, 512, 1);
        short.exchange(1, ArrivalOrder::InOrder);
        long.exchange(1, ArrivalOrder::InOrder);
        assert!(long.hc_remove_ns() > 100.0 * short.hc_remove_ns() / 2.0);
    }

    #[test]
    fn hc_with_pool_has_flat_tiny_overhead() {
        let mut r = RepRank::new(setup(LocalityConfig::hc_lla(2)), 2048, 1);
        assert!(r.hc_remove_ns() < 10.0);
        r.exchange(16, ArrivalOrder::InOrder);
        assert!(r.hc_remove_ns() < 10.0);
    }
}
