//! MiniFE proxy: implicit finite-elements conjugate-gradient solve
//! (Figure 9).
//!
//! MiniFE's communication is a textbook bulk-synchronous halo exchange: per
//! CG iteration each rank exchanges boundary segments with its 26
//! grid neighbours (face neighbours carry separately-packed vector
//! segments), runs the sparse matrix-vector product, and closes with two
//! dot-product allreduces. "The communication pattern requires a limited
//! number and frequency of messages with a relatively predictable ordering"
//! — so arrivals here are in-order, and locality only matters through the
//! artificially padded match lists the paper's modified mini-app adds.

use spc_cachesim::{ArchProfile, LocalityConfig};
use spc_simnet::NetProfile;

use crate::common::{AppSetup, ArrivalOrder, RepRank};

/// MiniFE proxy parameters.
#[derive(Clone, Copy, Debug)]
pub struct MiniFeParams {
    /// Total ranks (the paper fixes 512).
    pub ranks: u32,
    /// Artificial match-list length (the x-axis of Figure 9).
    pub pad: u32,
    /// CG iterations.
    pub iterations: u32,
    /// Messages per rank per iteration (the 26 neighbours of the 27-point
    /// hex-element coupling).
    pub msgs_per_iter: u32,
    /// Halo message payload (boundary of a 1320³/512 block).
    pub bytes_per_msg: u64,
    /// Matrix-vector + vector-ops compute per iteration, nanoseconds
    /// (calibrated: a 165³-point block at ~2 GF/s).
    pub compute_ns: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MiniFeParams {
    /// The paper's configuration: 512 ranks, 1320³ problem.
    pub fn paper_scale(pad: u32) -> Self {
        Self {
            ranks: 512,
            pad,
            iterations: 200,
            msgs_per_iter: 26,
            bytes_per_msg: 165 * 165 * 8,
            compute_ns: 238e6,
            seed: 0xF1FE,
        }
    }

    /// Fast test configuration.
    pub fn small(pad: u32) -> Self {
        Self {
            iterations: 10,
            compute_ns: 1e6,
            ..Self::paper_scale(pad)
        }
    }
}

/// Result of one proxy run.
#[derive(Clone, Copy, Debug)]
pub struct MiniFeResult {
    /// Total execution time, seconds.
    pub seconds: f64,
    /// Time spent in matching, seconds.
    pub match_seconds: f64,
    /// Mean PRQ search depth.
    pub mean_depth: f64,
}

/// Runs the proxy on Broadwell/OmniPath (the paper's platform for the
/// mini-app study) under the given locality configuration.
pub fn run(p: MiniFeParams, locality: LocalityConfig) -> MiniFeResult {
    run_on(
        p,
        AppSetup {
            arch: ArchProfile::broadwell(),
            net: NetProfile::omnipath(),
            locality,
        },
    )
}

/// Runs the proxy on an explicit setup.
pub fn run_on(p: MiniFeParams, setup: AppSetup) -> MiniFeResult {
    let mut rank = RepRank::new(setup, p.pad as usize, p.seed);
    let mut total_ns = 0.0;
    let mut match_ns = 0.0;
    for _ in 0..p.iterations {
        // Halo exchange: pre-posted receives, neighbours well synchronized.
        let m = rank.exchange(p.msgs_per_iter, ArrivalOrder::InOrder);
        match_ns += m;
        let wire = p.msgs_per_iter as f64 * setup.net.send_overhead_ns
            + setup.net.wire_ns(p.msgs_per_iter as u64 * p.bytes_per_msg)
            + setup.net.latency_ns;
        // Matvec + AXPYs, then the two dot-product allreduces.
        total_ns += m + wire + p.compute_ns + 2.0 * setup.net.tree_collective_ns(p.ranks, 8);
    }
    MiniFeResult {
        seconds: total_ns / 1e9,
        match_seconds: match_ns / 1e9,
        mean_depth: rank.mean_depth(),
    }
}

/// The Figure 9 x-axis.
pub fn figure9_pads() -> Vec<u32> {
    vec![128, 512, 2048]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_with_padded_list_length() {
        let a = run(MiniFeParams::small(128), LocalityConfig::baseline());
        let b = run(MiniFeParams::small(2048), LocalityConfig::baseline());
        assert!(b.seconds > a.seconds);
        assert!(b.mean_depth > 2048.0);
    }

    #[test]
    fn lla_improves_runtime_modestly_at_2048() {
        // Figure 9: "Using LLA at 2048 queue sizes results in a 2.3%
        // improvement to runtime" — a small but not insignificant gain.
        // (Every per-iteration term is constant, so the relative gain is
        // invariant to the iteration count; use fewer for test speed.)
        let p = MiniFeParams {
            iterations: 5,
            ..MiniFeParams::paper_scale(2048)
        };
        let base = run(p, LocalityConfig::baseline());
        let lla = run(p, LocalityConfig::lla(2));
        let gain = (base.seconds - lla.seconds) / base.seconds;
        assert!(
            (0.005..0.08).contains(&gain),
            "gain {gain:.4} (base {:.1}s lla {:.1}s)",
            base.seconds,
            lla.seconds
        );
    }

    #[test]
    fn gain_shrinks_at_short_lists() {
        let short = {
            let p = MiniFeParams {
                iterations: 5,
                ..MiniFeParams::paper_scale(128)
            };
            let b = run(p, LocalityConfig::baseline());
            let l = run(p, LocalityConfig::lla(2));
            (b.seconds - l.seconds) / b.seconds
        };
        let long = {
            let p = MiniFeParams {
                iterations: 5,
                ..MiniFeParams::paper_scale(2048)
            };
            let b = run(p, LocalityConfig::baseline());
            let l = run(p, LocalityConfig::lla(2));
            (b.seconds - l.seconds) / b.seconds
        };
        assert!(long > short, "long {long:.4} vs short {short:.4}");
    }

    #[test]
    fn absolute_runtime_in_papers_range() {
        // Figure 9 shows ~45–55 s runs; check a 5-iteration slice of the
        // 200-iteration run (runtime is linear in iterations).
        let p = MiniFeParams {
            iterations: 5,
            ..MiniFeParams::paper_scale(512)
        };
        let r = run(p, LocalityConfig::baseline());
        let full = r.seconds * (200.0 / 5.0);
        assert!(
            (30.0..80.0).contains(&full),
            "projected runtime {full:.1}s out of range"
        );
    }

    #[test]
    fn matching_is_a_small_fraction_as_in_tuned_apps() {
        // §4.4: "matching is not a significant part of the runtime for
        // today's highly tuned applications".
        let p = MiniFeParams {
            iterations: 5,
            ..MiniFeParams::paper_scale(128)
        };
        let r = run(p, LocalityConfig::baseline());
        assert!(r.match_seconds / r.seconds < 0.05);
    }
}
