//! Fire Dynamics Simulator proxy (Figure 10, §4.5).
//!
//! FDS couples its per-rank meshes through a global pressure solve whose
//! point-to-point exchange "builds up large match lists and does not
//! typically match the first element in the list" — arrivals are modelled
//! tail-first. Coupling densifies with scale: the per-rank message count
//! grows linearly in job size, so matching goes from irrelevant at 128
//! ranks to the dominant cost at 4–8 Ki ranks, which is where the paper
//! observes its 2× linked-list-of-arrays speedups.
//!
//! Hot caching interacts through two opposing paths: heated lists make the
//! deep tail-first searches hit the L3 instead of DRAM, but without the
//! element pool every matched entry's node must be removed from the
//! heater's region list under a spin lock whose critical section scales
//! with the region-queue length (§4.5: "this is due to lock contention as
//! we must remove elements from the hot caching list before MPI can
//! deallocate them") — so HC alone *slows FDS down* while HC+LLA wins.

use spc_cachesim::{ArchProfile, LocalityConfig};
use spc_simnet::NetProfile;

use crate::common::{AppSetup, ArrivalOrder, RepRank};

/// FDS proxy parameters.
#[derive(Clone, Copy, Debug)]
pub struct FdsParams {
    /// Total ranks (the paper scales 128 → 8192).
    pub ranks: u32,
    /// Pressure-iteration count.
    pub iterations: u32,
    /// Mesh-coupling density: messages per rank per iteration is
    /// `ranks * coupling / 32`.
    pub coupling: u32,
    /// Compute per rank per iteration, nanoseconds.
    pub compute_ns: f64,
    /// Message payload bytes.
    pub bytes_per_msg: u64,
    /// RNG seed.
    pub seed: u64,
}

impl FdsParams {
    /// The paper's scaling study shape.
    pub fn paper_scale(ranks: u32) -> Self {
        Self {
            ranks,
            iterations: 10,
            coupling: 3,
            compute_ns: 6.0e6,
            bytes_per_msg: 2048,
            seed: 0xFD5,
        }
    }

    /// Fast test configuration.
    pub fn small(ranks: u32) -> Self {
        Self {
            iterations: 3,
            ..Self::paper_scale(ranks)
        }
    }

    /// Messages per rank per pressure iteration. Coupling densifies
    /// linearly with job size until the solver's bounded halo caps it.
    pub fn msgs_per_iter(&self) -> u32 {
        (self.ranks * self.coupling / 32).clamp(4, 384)
    }
}

/// Result of one proxy run.
#[derive(Clone, Copy, Debug)]
pub struct FdsResult {
    /// Total execution time, seconds.
    pub seconds: f64,
    /// Time spent in matching (including hot-cache lock overheads),
    /// seconds.
    pub match_seconds: f64,
    /// Mean PRQ search depth.
    pub mean_depth: f64,
}

/// Runs the proxy under the given setup.
pub fn run_on(p: FdsParams, setup: AppSetup) -> FdsResult {
    let mut rank = RepRank::new(setup, 0, p.seed);
    let m = p.msgs_per_iter();
    let mut total_ns = 0.0;
    let mut match_ns = 0.0;
    for _ in 0..p.iterations {
        let t = rank.exchange(m, ArrivalOrder::Reversed);
        match_ns += t;
        let wire = setup.net.wire_ns(m as u64 * p.bytes_per_msg) + setup.net.latency_ns;
        total_ns += t + wire + p.compute_ns;
        // Pressure-solve convergence check.
        total_ns += setup.net.tree_collective_ns(p.ranks, 8);
    }
    FdsResult {
        seconds: total_ns / 1e9,
        match_seconds: match_ns / 1e9,
        mean_depth: rank.mean_depth(),
    }
}

/// Runs on the Nehalem cluster (the paper's large-scale platform).
pub fn run_nehalem(p: FdsParams, locality: LocalityConfig) -> FdsResult {
    run_on(
        p,
        AppSetup {
            arch: ArchProfile::nehalem(),
            net: NetProfile::mellanox_qdr(),
            locality,
        },
    )
}

/// Runs on the Broadwell system (the paper's 128–1024 rank platform).
pub fn run_broadwell(p: FdsParams, locality: LocalityConfig) -> FdsResult {
    run_on(
        p,
        AppSetup {
            arch: ArchProfile::broadwell(),
            net: NetProfile::omnipath(),
            locality,
        },
    )
}

/// Factor speedup of `locality` over the baseline at the same scale — the
/// y-axis of Figure 10.
pub fn speedup_nehalem(ranks: u32, locality: LocalityConfig) -> f64 {
    speedup_nehalem_with(FdsParams::paper_scale(ranks), locality)
}

/// Factor speedup with explicit parameters.
pub fn speedup_nehalem_with(p: FdsParams, locality: LocalityConfig) -> f64 {
    let base = run_nehalem(p, LocalityConfig::baseline());
    let cfg = run_nehalem(p, locality);
    base.seconds / cfg.seconds
}

/// Factor speedup over baseline on Broadwell.
pub fn speedup_broadwell(ranks: u32, locality: LocalityConfig) -> f64 {
    let p = FdsParams::paper_scale(ranks);
    let base = run_broadwell(p, LocalityConfig::baseline());
    let cfg = run_broadwell(p, locality);
    base.seconds / cfg.seconds
}

/// The Figure 10 x-axis.
pub fn figure10_ranks() -> Vec<u32> {
    vec![128, 256, 512, 1024, 2048, 4096, 8192]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_lists_grow_with_scale() {
        let a = run_nehalem(FdsParams::small(128), LocalityConfig::baseline());
        let b = run_nehalem(FdsParams::small(1024), LocalityConfig::baseline());
        assert!(b.mean_depth > 4.0 * a.mean_depth);
    }

    #[test]
    fn deep_tail_first_matching() {
        // "does not typically match the first element in the list".
        let r = run_nehalem(FdsParams::small(1024), LocalityConfig::baseline());
        let m = FdsParams::small(1024).msgs_per_iter() as f64;
        assert!(
            r.mean_depth > 0.3 * m,
            "depth {:.1} of list {m}",
            r.mean_depth
        );
    }

    #[test]
    fn lla_speedup_rises_toward_2x_at_4k() {
        // Speedups are iteration-invariant; use short runs.
        let s128 = speedup_nehalem_with(FdsParams::small(128), LocalityConfig::lla(2));
        let s4k = speedup_nehalem_with(FdsParams::small(4096), LocalityConfig::lla(2));
        assert!(s128 < 1.15, "no meaningful gain at small scale: {s128:.3}");
        assert!(s4k > 1.6, "big gain at 4Ki ranks: {s4k:.3}");
        assert!(s4k > s128);
    }

    #[test]
    fn hc_alone_slows_fds_down() {
        // Figure 10's HC-Nehalem curve sits below 1.
        let s = speedup_nehalem_with(FdsParams::small(1024), LocalityConfig::hc());
        assert!(s < 1.0, "HC alone should lose: {s:.3}");
    }

    #[test]
    fn hc_plus_lla_beats_lla_alone_at_1024() {
        // §4.5: HC+LLA is 14.5% over baseline and 10.4% over LLA alone at
        // 1024 ranks; we require the ordering and a meaningful margin.
        let lla = speedup_nehalem_with(FdsParams::small(1024), LocalityConfig::lla(2));
        let both = speedup_nehalem_with(FdsParams::small(1024), LocalityConfig::hc_lla(2));
        assert!(both > lla, "HC+LLA {both:.3} should beat LLA {lla:.3}");
        assert!(both > 1.02);
    }

    #[test]
    fn lla_large_wins_at_8k() {
        // The LLA-Large point: ~2x at 8192 ranks.
        let s = speedup_nehalem_with(FdsParams::small(8192), LocalityConfig::lla(512));
        assert!(s > 1.6, "LLA-Large at 8Ki: {s:.3}");
    }

    #[test]
    fn broadwell_lla_at_1024_near_1_2x() {
        // "a marked performance increase at 1024 with 1.21x".
        let p = FdsParams::small(1024);
        let base = run_broadwell(p, LocalityConfig::baseline());
        let cfg = run_broadwell(p, LocalityConfig::lla(2));
        let s = base.seconds / cfg.seconds;
        assert!((1.03..1.6).contains(&s), "BDW LLA @1024: {s:.3}");
    }
}
