//! The differential driver: replay one op stream through the oracle and a
//! subject, comparing observable behaviour after every step.
//!
//! On the first disagreement the driver stops and returns a [`Divergence`]
//! naming the step, the operation, and what differed. Pair it with
//! [`crate::shrink::shrink_ops`] to reduce the stream and
//! [`crate::shrink::render_ops`] to print a paste-able repro.

use crate::ops::{EngineOp, PostedOp, UmqOp};
use crate::oracle::OracleList;
use spc_core::dynengine::{DynEngine, EngineKind};
use spc_core::engine::{
    ArrivalOutcome, MatchEngine, QueueBounds, RecvOutcome, TryArrivalOutcome, TryRecvOutcome,
};
use spc_core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry, ANY_SOURCE, ANY_TAG};
use spc_core::list::MatchList;
use spc_core::NullSink;

/// How strictly search depth is compared against the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepthMode {
    /// Depth must equal the oracle's exactly (linear structures: the
    /// 1-based FIFO position of a hit, the live length on a miss).
    Exact,
    /// Depth must satisfy the bounds every structure owes: a hit inspects
    /// at least one entry and no search inspects more entries than were
    /// live (partitioned structures legitimately inspect fewer).
    Bounded,
}

/// First point where subject and oracle disagreed.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Zero-based index of the op that exposed the disagreement.
    pub step: usize,
    /// Debug rendering of that op.
    pub op: String,
    /// What differed (expected vs got).
    pub detail: String,
}

impl core::fmt::Display for Divergence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "step {} ({}): {}", self.step, self.op, self.detail)
    }
}

/// Under `debug_invariants`: turns a structure/engine invariant violation
/// into a [`Divergence`] at the current step, so a validator failure is
/// reported (and shrunk) exactly like a behavioral divergence.
#[cfg(feature = "debug_invariants")]
fn check_invariants(
    validated: Result<(), String>,
    step: usize,
    op: impl core::fmt::Debug,
) -> Result<(), Divergence> {
    validated.map_err(|e| diverge(step, op, format!("invariant violation: {e}")))
}

fn diverge(step: usize, op: impl core::fmt::Debug, detail: String) -> Divergence {
    Divergence {
        step,
        op: format!("{op:?}"),
        detail,
    }
}

/// Checks a subject's depth against the oracle's under `mode`.
/// `live_before` is the number of live entries in the searched queue
/// before the op; `hit` whether the search matched.
fn depth_ok(
    mode: DepthMode,
    got: u32,
    oracle: u32,
    hit: bool,
    live_before: usize,
) -> Result<(), String> {
    match mode {
        DepthMode::Exact => {
            if got != oracle {
                return Err(format!("depth {got}, oracle depth {oracle}"));
            }
        }
        DepthMode::Bounded => {
            if hit && got == 0 {
                return Err("hit reported depth 0 (a match must be inspected)".into());
            }
            if got as usize > live_before {
                return Err(format!("depth {got} exceeds live length {live_before}"));
            }
        }
    }
    Ok(())
}

fn spec(rank: Option<i32>, tag: Option<i32>, ctx: u16) -> RecvSpec {
    RecvSpec::new(rank.unwrap_or(ANY_SOURCE), tag.unwrap_or(ANY_TAG), ctx)
}

/// Replays `ops` through the oracle and `subject` in lockstep, comparing
/// search results (by request id), cancel results, lengths, depths (per
/// `mode`) and full snapshots after every step.
pub fn diff_posted<L: MatchList<PostedEntry>>(
    subject: &mut L,
    mode: DepthMode,
    ops: &[PostedOp],
) -> Result<(), Divergence> {
    let mut oracle: OracleList<PostedEntry> = OracleList::new();
    let mut sink = NullSink;
    let mut next_req = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            PostedOp::Append { rank, tag, ctx } => {
                let e = PostedEntry::from_spec(spec(rank, tag, ctx), next_req);
                next_req += 1;
                oracle.append(e, &mut sink);
                subject.append(e, &mut sink);
            }
            PostedOp::Search { rank, tag, ctx } => {
                let live = oracle.len();
                let env = Envelope::new(rank, tag, ctx);
                let want = oracle.search_remove(&env, &mut sink);
                let got = subject.search_remove(&env, &mut sink);
                if got.found.map(|e| e.request) != want.found.map(|e| e.request) {
                    return Err(diverge(
                        step,
                        op,
                        format!(
                            "matched {:?}, oracle matched {:?}",
                            got.found.map(|e| e.request),
                            want.found.map(|e| e.request)
                        ),
                    ));
                }
                depth_ok(mode, got.depth, want.depth, got.found.is_some(), live)
                    .map_err(|d| diverge(step, op, d))?;
            }
            PostedOp::Cancel { req } => {
                let want = oracle.remove_by_id(req, &mut sink).map(|e| e.request);
                let got = subject.remove_by_id(req, &mut sink).map(|e| e.request);
                if got != want {
                    return Err(diverge(
                        step,
                        op,
                        format!("cancelled {got:?}, oracle {want:?}"),
                    ));
                }
            }
            PostedOp::Clear => {
                oracle.clear();
                subject.clear();
            }
        }
        if subject.len() != oracle.len() {
            return Err(diverge(
                step,
                op,
                format!("len {}, oracle len {}", subject.len(), oracle.len()),
            ));
        }
        let want: Vec<u64> = oracle.snapshot().iter().map(|e| e.request).collect();
        let got: Vec<u64> = subject.snapshot().iter().map(|e| e.request).collect();
        if got != want {
            return Err(diverge(
                step,
                op,
                format!("snapshot {got:?}, oracle {want:?}"),
            ));
        }
        #[cfg(feature = "debug_invariants")]
        check_invariants(subject.validate(), step, op)?;
    }
    Ok(())
}

/// Unexpected-queue counterpart of [`diff_posted`] (elements are concrete
/// messages, probes may be wildcarded).
pub fn diff_umq<L: MatchList<UnexpectedEntry>>(
    subject: &mut L,
    mode: DepthMode,
    ops: &[UmqOp],
) -> Result<(), Divergence> {
    let mut oracle: OracleList<UnexpectedEntry> = OracleList::new();
    let mut sink = NullSink;
    let mut next_payload = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            UmqOp::Arrive { rank, tag, ctx } => {
                let e = UnexpectedEntry::from_envelope(Envelope::new(rank, tag, ctx), next_payload);
                next_payload += 1;
                oracle.append(e, &mut sink);
                subject.append(e, &mut sink);
            }
            UmqOp::Recv { rank, tag, ctx } => {
                let live = oracle.len();
                let s = spec(rank, tag, ctx);
                let want = oracle.search_remove(&s, &mut sink);
                let got = subject.search_remove(&s, &mut sink);
                if got.found.map(|e| e.payload) != want.found.map(|e| e.payload) {
                    return Err(diverge(
                        step,
                        op,
                        format!(
                            "matched {:?}, oracle matched {:?}",
                            got.found.map(|e| e.payload),
                            want.found.map(|e| e.payload)
                        ),
                    ));
                }
                depth_ok(mode, got.depth, want.depth, got.found.is_some(), live)
                    .map_err(|d| diverge(step, op, d))?;
            }
            UmqOp::Clear => {
                oracle.clear();
                subject.clear();
            }
        }
        if subject.len() != oracle.len() {
            return Err(diverge(
                step,
                op,
                format!("len {}, oracle len {}", subject.len(), oracle.len()),
            ));
        }
        let want: Vec<u64> = oracle.snapshot().iter().map(|e| e.payload).collect();
        let got: Vec<u64> = subject.snapshot().iter().map(|e| e.payload).collect();
        if got != want {
            return Err(diverge(
                step,
                op,
                format!("snapshot {got:?}, oracle {want:?}"),
            ));
        }
        #[cfg(feature = "debug_invariants")]
        check_invariants(subject.validate(), step, op)?;
    }
    Ok(())
}

/// The engine surface the differential driver needs; implemented by both
/// the statically-typed [`MatchEngine`] and the runtime-selected
/// [`DynEngine`].
pub trait ConformEngine {
    /// See [`MatchEngine::post_recv`].
    fn post_recv(&mut self, spec: RecvSpec, request: u64) -> RecvOutcome;
    /// See [`MatchEngine::arrival`].
    fn arrival(&mut self, env: Envelope, payload: u64) -> ArrivalOutcome;
    /// See [`MatchEngine::iprobe`].
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)>;
    /// See [`MatchEngine::cancel_recv`].
    fn cancel_recv(&mut self, request: u64) -> bool;
    /// Current PRQ length.
    fn prq_len(&self) -> usize;
    /// Current UMQ length.
    fn umq_len(&self) -> usize;
    /// Empties both queues.
    fn reset(&mut self);
    /// `(PRQ request ids, UMQ payload ids)` in FIFO order, when the
    /// engine exposes its queues ([`DynEngine`] does not).
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)>;
    /// Structural invariant check; engines that expose validators override
    /// this ([`MatchEngine`] validates both queues, the sharded engine its
    /// cross-shard protocol state). Called after every op under
    /// `--features debug_invariants`.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

impl<P, U> ConformEngine for MatchEngine<P, U>
where
    P: MatchList<PostedEntry>,
    U: MatchList<UnexpectedEntry>,
{
    fn post_recv(&mut self, spec: RecvSpec, request: u64) -> RecvOutcome {
        MatchEngine::post_recv(self, spec, request)
    }
    fn arrival(&mut self, env: Envelope, payload: u64) -> ArrivalOutcome {
        MatchEngine::arrival(self, env, payload)
    }
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)> {
        MatchEngine::iprobe(self, spec)
    }
    fn cancel_recv(&mut self, request: u64) -> bool {
        MatchEngine::cancel_recv(self, request)
    }
    fn prq_len(&self) -> usize {
        MatchEngine::prq_len(self)
    }
    fn umq_len(&self) -> usize {
        MatchEngine::umq_len(self)
    }
    fn reset(&mut self) {
        MatchEngine::reset(self)
    }
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        Some((
            self.prq().snapshot().iter().map(|e| e.request).collect(),
            self.umq().snapshot().iter().map(|e| e.payload).collect(),
        ))
    }
    fn validate(&self) -> Result<(), String> {
        MatchEngine::validate(self)
    }
}

impl ConformEngine for DynEngine {
    fn post_recv(&mut self, spec: RecvSpec, request: u64) -> RecvOutcome {
        DynEngine::post_recv(self, spec, request)
    }
    fn arrival(&mut self, env: Envelope, payload: u64) -> ArrivalOutcome {
        DynEngine::arrival(self, env, payload)
    }
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)> {
        DynEngine::iprobe(self, spec)
    }
    fn cancel_recv(&mut self, request: u64) -> bool {
        DynEngine::cancel_recv(self, request)
    }
    fn prq_len(&self) -> usize {
        DynEngine::prq_len(self)
    }
    fn umq_len(&self) -> usize {
        DynEngine::umq_len(self)
    }
    fn reset(&mut self) {
        DynEngine::reset(self)
    }
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        None
    }
}

/// Replays an engine-level op stream through a reference engine (both
/// queues backed by [`OracleList`]) and `subject`, comparing outcomes,
/// iprobe results, queue lengths and — when the subject exposes its
/// queues — full snapshots after every step.
///
/// Iprobe depth is always compared exactly: it is defined on a FIFO
/// snapshot, so it is structure-independent by construction.
pub fn diff_engine<Eng: ConformEngine>(
    subject: &mut Eng,
    mode: DepthMode,
    ops: &[EngineOp],
) -> Result<(), Divergence> {
    let mut reference: MatchEngine<OracleList<PostedEntry>, OracleList<UnexpectedEntry>> =
        MatchEngine::new(OracleList::new(), OracleList::new());
    let mut next_req = 0u64;
    let mut next_payload = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            EngineOp::PostRecv { rank, tag, ctx } => {
                let s = spec(rank, tag, ctx);
                let req = next_req;
                next_req += 1;
                let live = reference.umq_len();
                let want = reference.post_recv(s, req);
                let got = ConformEngine::post_recv(subject, s, req);
                match (got, want) {
                    (RecvOutcome::Posted, RecvOutcome::Posted) => {}
                    (
                        RecvOutcome::MatchedUnexpected {
                            payload: gp,
                            depth: gd,
                        },
                        RecvOutcome::MatchedUnexpected {
                            payload: wp,
                            depth: wd,
                        },
                    ) => {
                        if gp != wp {
                            return Err(diverge(
                                step,
                                op,
                                format!("matched payload {gp}, oracle {wp}"),
                            ));
                        }
                        depth_ok(mode, gd, wd, true, live).map_err(|d| diverge(step, op, d))?;
                    }
                    (g, w) => {
                        return Err(diverge(step, op, format!("outcome {g:?}, oracle {w:?}")))
                    }
                }
            }
            EngineOp::Arrival { rank, tag, ctx } => {
                let env = Envelope::new(rank, tag, ctx);
                let payload = next_payload;
                next_payload += 1;
                let live = reference.prq_len();
                let want = reference.arrival(env, payload);
                let got = ConformEngine::arrival(subject, env, payload);
                match (got, want) {
                    (ArrivalOutcome::Queued, ArrivalOutcome::Queued) => {}
                    (
                        ArrivalOutcome::MatchedPosted {
                            request: gr,
                            depth: gd,
                        },
                        ArrivalOutcome::MatchedPosted {
                            request: wr,
                            depth: wd,
                        },
                    ) => {
                        if gr != wr {
                            return Err(diverge(
                                step,
                                op,
                                format!("matched request {gr}, oracle {wr}"),
                            ));
                        }
                        depth_ok(mode, gd, wd, true, live).map_err(|d| diverge(step, op, d))?;
                    }
                    (g, w) => {
                        return Err(diverge(step, op, format!("outcome {g:?}, oracle {w:?}")))
                    }
                }
            }
            EngineOp::Iprobe { rank, tag, ctx } => {
                let s = spec(rank, tag, ctx);
                let want = reference.iprobe(s);
                let got = ConformEngine::iprobe(subject, s);
                if got != want {
                    return Err(diverge(
                        step,
                        op,
                        format!("iprobe {got:?}, oracle {want:?}"),
                    ));
                }
            }
            EngineOp::Cancel { nth } => {
                // Map the generator's free index onto a handle that was
                // actually issued, so cancels usually name live receives.
                let req = if next_req == 0 { nth } else { nth % next_req };
                let want = reference.cancel_recv(req);
                let got = ConformEngine::cancel_recv(subject, req);
                if got != want {
                    return Err(diverge(
                        step,
                        op,
                        format!("cancel({req}) -> {got}, oracle {want}"),
                    ));
                }
            }
            EngineOp::Clear => {
                reference.reset();
                subject.reset();
            }
        }
        if subject.prq_len() != reference.prq_len() || subject.umq_len() != reference.umq_len() {
            return Err(diverge(
                step,
                op,
                format!(
                    "lens prq={}/umq={}, oracle prq={}/umq={}",
                    subject.prq_len(),
                    subject.umq_len(),
                    reference.prq_len(),
                    reference.umq_len()
                ),
            ));
        }
        if let Some((got_prq, got_umq)) = subject.queue_ids() {
            let want_prq: Vec<u64> = reference
                .prq()
                .snapshot()
                .iter()
                .map(|e| e.request)
                .collect();
            let want_umq: Vec<u64> = reference
                .umq()
                .snapshot()
                .iter()
                .map(|e| e.payload)
                .collect();
            if got_prq != want_prq {
                return Err(diverge(
                    step,
                    op,
                    format!("prq snapshot {got_prq:?}, oracle {want_prq:?}"),
                ));
            }
            if got_umq != want_umq {
                return Err(diverge(
                    step,
                    op,
                    format!("umq snapshot {got_umq:?}, oracle {want_umq:?}"),
                ));
            }
        }
        #[cfg(feature = "debug_invariants")]
        check_invariants(subject.validate(), step, op)?;
    }
    Ok(())
}

/// Runs [`diff_engine`] against a freshly-built [`DynEngine`] of `kind`.
pub fn diff_dyn_engine(
    kind: EngineKind,
    mode: DepthMode,
    ops: &[EngineOp],
) -> Result<(), Divergence> {
    diff_engine(&mut DynEngine::new(kind), mode, ops)
}

/// The engine surface the *bounded* differential driver needs: the
/// admission-capped `try_*` operations plus the rejection counters they
/// maintain. Implemented by [`MatchEngine`] for every structure pair.
pub trait BoundedConformEngine {
    /// See [`MatchEngine::try_post_recv`].
    fn try_post_recv(&mut self, spec: RecvSpec, request: u64) -> TryRecvOutcome;
    /// See [`MatchEngine::try_arrival`].
    fn try_arrival(&mut self, env: Envelope, payload: u64) -> TryArrivalOutcome;
    /// See [`MatchEngine::iprobe`].
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)>;
    /// See [`MatchEngine::cancel_recv`].
    fn cancel_recv(&mut self, request: u64) -> bool;
    /// Current PRQ length.
    fn prq_len(&self) -> usize;
    /// Current UMQ length.
    fn umq_len(&self) -> usize;
    /// Empties both queues and clears statistics.
    fn reset(&mut self);
    /// `(prq_rejections, umq_rejections)` since construction or the last
    /// reset.
    fn rejections(&self) -> (u64, u64);
    /// `(PRQ request ids, UMQ payload ids)` in FIFO order, when exposed.
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)>;
    /// Structural invariant check (see [`ConformEngine::validate`]).
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

impl<P, U> BoundedConformEngine for MatchEngine<P, U>
where
    P: MatchList<PostedEntry>,
    U: MatchList<UnexpectedEntry>,
{
    fn try_post_recv(&mut self, spec: RecvSpec, request: u64) -> TryRecvOutcome {
        MatchEngine::try_post_recv(self, spec, request)
    }
    fn try_arrival(&mut self, env: Envelope, payload: u64) -> TryArrivalOutcome {
        MatchEngine::try_arrival(self, env, payload)
    }
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)> {
        MatchEngine::iprobe(self, spec)
    }
    fn cancel_recv(&mut self, request: u64) -> bool {
        MatchEngine::cancel_recv(self, request)
    }
    fn prq_len(&self) -> usize {
        MatchEngine::prq_len(self)
    }
    fn umq_len(&self) -> usize {
        MatchEngine::umq_len(self)
    }
    fn reset(&mut self) {
        MatchEngine::reset(self)
    }
    fn rejections(&self) -> (u64, u64) {
        let s = self.stats();
        (s.prq_rejections, s.umq_rejections)
    }
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        Some((
            self.prq().snapshot().iter().map(|e| e.request).collect(),
            self.umq().snapshot().iter().map(|e| e.payload).collect(),
        ))
    }
    fn validate(&self) -> Result<(), String> {
        MatchEngine::validate(self)
    }
}

/// Bounded-admission counterpart of [`diff_engine`]: replays `ops`
/// through a reference engine built with the same `bounds` (both queues
/// backed by [`OracleList`]) and `subject`, driving every post/arrival
/// through the capped `try_*` path and comparing outcomes — including
/// *which* requests are rejected — queue lengths, rejection counters and
/// snapshots after every step.
///
/// The subject must already be configured with `bounds`; admission is a
/// policy on queue length, not structure, so rejection outcomes and
/// counters are compared exactly in every [`DepthMode`]. Returns the
/// total number of rejections the stream provoked (accumulated across
/// `Clear` resets) so callers can assert the caps actually bit.
pub fn diff_engine_bounded<Eng: BoundedConformEngine>(
    subject: &mut Eng,
    bounds: QueueBounds,
    mode: DepthMode,
    ops: &[EngineOp],
) -> Result<u64, Divergence> {
    let mut reference: MatchEngine<OracleList<PostedEntry>, OracleList<UnexpectedEntry>> =
        MatchEngine::with_bounds(OracleList::new(), OracleList::new(), bounds);
    let mut next_req = 0u64;
    let mut next_payload = 0u64;
    let mut total_rejections = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            EngineOp::PostRecv { rank, tag, ctx } => {
                let s = spec(rank, tag, ctx);
                let req = next_req;
                next_req += 1;
                let live = reference.umq_len();
                let want = reference.try_post_recv(s, req);
                let got = BoundedConformEngine::try_post_recv(subject, s, req);
                match (got, want) {
                    (TryRecvOutcome::Posted, TryRecvOutcome::Posted) => {}
                    (
                        TryRecvOutcome::MatchedUnexpected {
                            payload: gp,
                            depth: gd,
                        },
                        TryRecvOutcome::MatchedUnexpected {
                            payload: wp,
                            depth: wd,
                        },
                    ) => {
                        if gp != wp {
                            return Err(diverge(
                                step,
                                op,
                                format!("matched payload {gp}, oracle {wp}"),
                            ));
                        }
                        depth_ok(mode, gd, wd, true, live).map_err(|d| diverge(step, op, d))?;
                    }
                    (
                        TryRecvOutcome::RejectedPrqFull { depth: gd },
                        TryRecvOutcome::RejectedPrqFull { depth: wd },
                    ) => {
                        depth_ok(mode, gd, wd, false, live).map_err(|d| diverge(step, op, d))?;
                    }
                    (g, w) => {
                        return Err(diverge(step, op, format!("outcome {g:?}, oracle {w:?}")))
                    }
                }
            }
            EngineOp::Arrival { rank, tag, ctx } => {
                let env = Envelope::new(rank, tag, ctx);
                let payload = next_payload;
                next_payload += 1;
                let live = reference.prq_len();
                let want = reference.try_arrival(env, payload);
                let got = BoundedConformEngine::try_arrival(subject, env, payload);
                match (got, want) {
                    (TryArrivalOutcome::Queued, TryArrivalOutcome::Queued) => {}
                    (
                        TryArrivalOutcome::MatchedPosted {
                            request: gr,
                            depth: gd,
                        },
                        TryArrivalOutcome::MatchedPosted {
                            request: wr,
                            depth: wd,
                        },
                    ) => {
                        if gr != wr {
                            return Err(diverge(
                                step,
                                op,
                                format!("matched request {gr}, oracle {wr}"),
                            ));
                        }
                        depth_ok(mode, gd, wd, true, live).map_err(|d| diverge(step, op, d))?;
                    }
                    (
                        TryArrivalOutcome::RejectedUmqFull { depth: gd },
                        TryArrivalOutcome::RejectedUmqFull { depth: wd },
                    ) => {
                        depth_ok(mode, gd, wd, false, live).map_err(|d| diverge(step, op, d))?;
                    }
                    (g, w) => {
                        return Err(diverge(step, op, format!("outcome {g:?}, oracle {w:?}")))
                    }
                }
            }
            EngineOp::Iprobe { rank, tag, ctx } => {
                let s = spec(rank, tag, ctx);
                let want = reference.iprobe(s);
                let got = BoundedConformEngine::iprobe(subject, s);
                if got != want {
                    return Err(diverge(
                        step,
                        op,
                        format!("iprobe {got:?}, oracle {want:?}"),
                    ));
                }
            }
            EngineOp::Cancel { nth } => {
                let req = if next_req == 0 { nth } else { nth % next_req };
                let want = reference.cancel_recv(req);
                let got = BoundedConformEngine::cancel_recv(subject, req);
                if got != want {
                    return Err(diverge(
                        step,
                        op,
                        format!("cancel({req}) -> {got}, oracle {want}"),
                    ));
                }
            }
            EngineOp::Clear => {
                let s = reference.stats();
                total_rejections += s.prq_rejections + s.umq_rejections;
                reference.reset();
                subject.reset();
            }
        }
        if subject.prq_len() != reference.prq_len() || subject.umq_len() != reference.umq_len() {
            return Err(diverge(
                step,
                op,
                format!(
                    "lens prq={}/umq={}, oracle prq={}/umq={}",
                    subject.prq_len(),
                    subject.umq_len(),
                    reference.prq_len(),
                    reference.umq_len()
                ),
            ));
        }
        let want_rej = (
            reference.stats().prq_rejections,
            reference.stats().umq_rejections,
        );
        if subject.rejections() != want_rej {
            return Err(diverge(
                step,
                op,
                format!(
                    "rejection counters {:?}, oracle {:?}",
                    subject.rejections(),
                    want_rej
                ),
            ));
        }
        if let Some((got_prq, got_umq)) = subject.queue_ids() {
            let want_prq: Vec<u64> = reference
                .prq()
                .snapshot()
                .iter()
                .map(|e| e.request)
                .collect();
            let want_umq: Vec<u64> = reference
                .umq()
                .snapshot()
                .iter()
                .map(|e| e.payload)
                .collect();
            if got_prq != want_prq {
                return Err(diverge(
                    step,
                    op,
                    format!("prq snapshot {got_prq:?}, oracle {want_prq:?}"),
                ));
            }
            if got_umq != want_umq {
                return Err(diverge(
                    step,
                    op,
                    format!("umq snapshot {got_umq:?}, oracle {want_umq:?}"),
                ));
            }
        }
        #[cfg(feature = "debug_invariants")]
        check_invariants(BoundedConformEngine::validate(subject), step, op)?;
    }
    let s = reference.stats();
    Ok(total_rejections + s.prq_rejections + s.umq_rejections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use spc_core::list::BaselineList;

    #[test]
    fn oracle_agrees_with_itself() {
        let stream = ops::engine_ops(1, 2_000);
        let mut subject: MatchEngine<OracleList<PostedEntry>, OracleList<UnexpectedEntry>> =
            MatchEngine::new(OracleList::new(), OracleList::new());
        diff_engine(&mut subject, DepthMode::Exact, &stream).unwrap();
    }

    #[test]
    fn bounded_oracle_agrees_with_itself_and_rejects() {
        let bounds = QueueBounds {
            max_prq: 8,
            max_umq: 8,
        };
        let mut subject: MatchEngine<OracleList<PostedEntry>, OracleList<UnexpectedEntry>> =
            MatchEngine::with_bounds(OracleList::new(), OracleList::new(), bounds);
        let stream = ops::engine_ops(2, 4_000);
        let rejected = diff_engine_bounded(&mut subject, bounds, DepthMode::Exact, &stream)
            .expect("oracle must agree with itself under identical caps");
        assert!(rejected > 0, "caps of 8 over 4k ops must actually reject");
    }

    #[test]
    fn divergence_reports_the_failing_step() {
        // A subject that is simply empty-forever must diverge on the
        // first append (len check).
        struct Broken;
        impl ConformEngine for Broken {
            fn post_recv(&mut self, _: RecvSpec, _: u64) -> RecvOutcome {
                RecvOutcome::Posted
            }
            fn arrival(&mut self, _: Envelope, _: u64) -> ArrivalOutcome {
                ArrivalOutcome::Queued
            }
            fn iprobe(&mut self, _: RecvSpec) -> Option<(u64, u32)> {
                None
            }
            fn cancel_recv(&mut self, _: u64) -> bool {
                false
            }
            fn prq_len(&self) -> usize {
                0
            }
            fn umq_len(&self) -> usize {
                0
            }
            fn reset(&mut self) {}
            fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)> {
                None
            }
        }
        let stream = vec![EngineOp::PostRecv {
            rank: Some(1),
            tag: Some(1),
            ctx: 0,
        }];
        let err = diff_engine(&mut Broken, DepthMode::Bounded, &stream).unwrap_err();
        assert_eq!(err.step, 0);
        assert!(err.detail.contains("lens"), "{err}");
    }

    #[test]
    fn baseline_lists_pass_a_quick_stream() {
        diff_posted(
            &mut BaselineList::new(),
            DepthMode::Exact,
            &ops::posted_ops(3, 1_000),
        )
        .unwrap();
        diff_umq(
            &mut BaselineList::new(),
            DepthMode::Exact,
            &ops::umq_ops(3, 1_000),
        )
        .unwrap();
    }
}
