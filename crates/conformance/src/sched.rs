//! Deterministic interleaving testing: drive racing threads one gated
//! step at a time through every possible interleaving of a short
//! scenario.
//!
//! Free-running stress (see [`crate::concurrent`]) finds races with
//! probability; it cannot *enumerate* them. For the hard races — a
//! wildcard post vs arrivals landing on two different shards, a cancel
//! vs a concurrent match, a probe vs a draining queue — this module
//! instead runs each thread behind a channel gate: the scheduler releases
//! exactly one thread for exactly one operation per step, so a scenario
//! of `k` total ops can be pushed through **all** `k!/(n₁!…nₜ!)`
//! interleavings ([`interleavings`]), each producing a seq-stamped log
//! that [`crate::concurrent::verify_log`] replays through the oracle.
//!
//! The ops still execute on real threads against the real concurrent
//! engine — the gate serializes *op boundaries*, not the lock protocol
//! inside each op — so every interleaving exercises the same code paths a
//! lucky race would.

use std::sync::mpsc;
use std::sync::Mutex;

use crate::concurrent::{ConcEngine, ConcOp, LogRecord, ThreadExec};
use spc_rng::{Rng, SeedableRng, StdRng};

/// Enumerates every interleaving of `counts[t]` steps per thread as
/// sequences of thread indices. The number of interleavings is the
/// multinomial coefficient — keep total steps ≤ ~8 (a 6-step two-thread
/// scenario has 20; three threads of 2 steps have 90).
pub fn interleavings(counts: &[usize]) -> Vec<Vec<usize>> {
    fn recurse(rem: &mut [usize], cur: &mut Vec<usize>, total: usize, out: &mut Vec<Vec<usize>>) {
        if cur.len() == total {
            out.push(cur.clone());
            return;
        }
        for t in 0..rem.len() {
            if rem[t] > 0 {
                rem[t] -= 1;
                cur.push(t);
                recurse(rem, cur, total, out);
                cur.pop();
                rem[t] += 1;
            }
        }
    }
    let total = counts.iter().sum();
    let mut out = Vec::new();
    recurse(
        &mut counts.to_vec(),
        &mut Vec::with_capacity(total),
        total,
        &mut out,
    );
    out
}

/// Seeded random subsample of schedules for scenarios too large to
/// enumerate: draws `n` schedules of `counts[t]` steps per thread.
pub fn sampled_schedules(counts: &[usize], n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total: usize = counts.iter().sum();
    (0..n)
        .map(|_| {
            let mut rem = counts.to_vec();
            let mut left = total;
            let mut sched = Vec::with_capacity(total);
            while left > 0 {
                // Pick the k-th remaining step uniformly, so long streams
                // are not biased toward low thread indices.
                let mut k = rng.gen_range(0..left);
                for (t, r) in rem.iter_mut().enumerate() {
                    if k < *r {
                        *r -= 1;
                        left -= 1;
                        sched.push(t);
                        break;
                    }
                    k -= *r;
                }
            }
            sched
        })
        .collect()
}

/// Runs `streams` against `eng` with the op-boundary order fixed by
/// `schedule` (a sequence of thread indices containing each thread
/// exactly `streams[t].len()` times). Threads are real and the engine's
/// locking runs for real; only the *order in which ops start* is pinned.
/// Returns the merged log sorted by seq stamp.
pub fn run_stepped<E: ConcEngine>(
    eng: &E,
    streams: &[Vec<ConcOp>],
    schedule: &[usize],
) -> Vec<LogRecord> {
    for (t, ops) in streams.iter().enumerate() {
        let steps = schedule.iter().filter(|&&x| x == t).count();
        assert_eq!(
            steps,
            ops.len(),
            "schedule must release thread {t} exactly once per op"
        );
    }
    let logs: Vec<Mutex<Vec<LogRecord>>> = streams.iter().map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        let (done_tx, done_rx) = mpsc::channel::<usize>();
        let mut gates = Vec::with_capacity(streams.len());
        for (t, ops) in streams.iter().enumerate() {
            let (go_tx, go_rx) = mpsc::channel::<()>();
            gates.push(go_tx);
            let done = done_tx.clone();
            let slot = &logs[t];
            s.spawn(move || {
                let mut exec = ThreadExec::new(t);
                let mut out = Vec::with_capacity(ops.len());
                for op in ops {
                    if go_rx.recv().is_err() {
                        break; // scheduler gone; abandon remaining ops
                    }
                    out.push(exec.run(eng, *op));
                    if done.send(t).is_err() {
                        break;
                    }
                }
                *slot.lock().expect("log slot poisoned") = out;
            });
        }
        drop(done_tx);
        for &t in schedule {
            gates[t].send(()).expect("worker died before its step");
            let who = done_rx.recv().expect("worker died mid-step");
            debug_assert_eq!(who, t, "gated step ran on the wrong thread");
        }
        drop(gates);
    });
    let mut log: Vec<LogRecord> = logs
        .into_iter()
        .flat_map(|m| m.into_inner().expect("log slot poisoned"))
        .collect();
    crate::concurrent::sort_log(&mut log);
    // The schedule is fully drained, so the engine is quiescent: run its
    // structural validators before handing the log to verification.
    #[cfg(feature = "debug_invariants")]
    if let Err(e) = eng.validate() {
        panic!("invariant violation after stepped schedule: {e}");
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleavings_count_is_the_multinomial() {
        assert_eq!(interleavings(&[1]).len(), 1);
        assert_eq!(interleavings(&[3, 3]).len(), 20); // 6!/(3!3!)
        assert_eq!(interleavings(&[2, 2, 2]).len(), 90); // 6!/(2!2!2!)
        let all = interleavings(&[2, 1]);
        assert_eq!(all, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn sampled_schedules_are_valid_and_deterministic() {
        let counts = [5usize, 3, 4];
        let a = sampled_schedules(&counts, 16, 7);
        assert_eq!(a, sampled_schedules(&counts, 16, 7));
        for sched in &a {
            assert_eq!(sched.len(), 12);
            for (t, &c) in counts.iter().enumerate() {
                assert_eq!(sched.iter().filter(|&&x| x == t).count(), c);
            }
        }
        // Different seeds reach different schedules.
        assert_ne!(a, sampled_schedules(&counts, 16, 8));
    }
}
