//! Failure minimization: delta-debugging over op streams.
//!
//! When the driver reports a divergence on a 10,000-op stream, the raw
//! stream is useless for debugging. [`shrink_ops`] removes chunks of
//! decreasing size while the failure persists, converging on a stream
//! where no single op can be dropped — typically a handful of ops.
//! [`render_ops`] then prints it as a `vec![...]` literal that pastes
//! directly into a unit test.

/// Minimizes `ops` with respect to the failure predicate `fails`.
///
/// `fails(&ops)` must be true on entry (the caller has already observed
/// the failure); the result is a subsequence on which `fails` still
/// returns true and from which no single op can be removed without the
/// failure disappearing (1-minimal). Deterministic: no randomness, and
/// `fails` is assumed pure — drivers rebuild their structures from
/// scratch on every call, so this holds by construction.
pub fn shrink_ops<T: Clone>(ops: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = ops.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if fails(&cand) {
                cur = cand;
                progressed = true;
                // Re-test the same index: the next chunk shifted into it.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                return cur;
            }
            // Another 1-op pass: earlier removals may enable new ones.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Renders a minimized op stream as a paste-able `vec![...]` literal.
///
/// `Debug` for the op enums matches their Rust constructor syntax, so
/// prefixing each line with the enum path yields compiling code:
///
/// ```text
/// let ops = vec![
///     EngineOp::PostRecv { rank: Some(1), tag: None, ctx: 0 },
///     EngineOp::Arrival { rank: 1, tag: 2, ctx: 0 },
/// ];
/// ```
pub fn render_ops<T: core::fmt::Debug>(enum_path: &str, ops: &[T]) -> String {
    let mut out = String::from("let ops = vec![\n");
    for op in ops {
        out.push_str(&format!("    {enum_path}::{op:?},\n"));
    }
    out.push_str("];\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::EngineOp;

    #[test]
    fn shrink_finds_the_minimal_failing_pair() {
        // Failure: the stream contains both a 3 and a 7 (in any order).
        let ops: Vec<u32> = (0..100).collect();
        let min = shrink_ops(&ops, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn shrink_is_one_minimal() {
        // Failure: sum of the stream is >= 10.
        let ops = vec![1u32, 9, 2, 8, 5];
        let min = shrink_ops(&ops, |s| s.iter().sum::<u32>() >= 10);
        assert!(min.iter().sum::<u32>() >= 10);
        for i in 0..min.len() {
            let mut cand = min.clone();
            cand.remove(i);
            assert!(
                cand.iter().sum::<u32>() < 10,
                "removable op survived shrinking"
            );
        }
    }

    #[test]
    fn render_produces_constructor_syntax() {
        let ops = vec![
            EngineOp::PostRecv {
                rank: Some(1),
                tag: None,
                ctx: 0,
            },
            EngineOp::Clear,
        ];
        let s = render_ops("EngineOp", &ops);
        assert!(
            s.contains("EngineOp::PostRecv { rank: Some(1), tag: None, ctx: 0 },"),
            "{s}"
        );
        assert!(s.contains("EngineOp::Clear,"), "{s}");
    }
}
