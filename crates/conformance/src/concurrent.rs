//! Concurrent differential conformance: race real threads against a
//! thread-safe engine, then replay the recorded linearization through the
//! oracle.
//!
//! The lockstep driver in [`crate::driver`] cannot exercise a concurrent
//! engine — the interesting bugs (a wildcard receive overtaken by a
//! racing arrival on another shard, a cancel landing mid-match) only
//! exist when operations overlap. This module closes that gap with a
//! linearization-based scheme:
//!
//! 1. [`conc_ops`] deals each of `N` threads its own seeded op stream
//!    (posts with wildcards, arrivals, probes, cancels of the thread's
//!    own requests; no clears — a reset is not linearizable against
//!    in-flight matches and real MPI serializes communicator teardown).
//! 2. [`run_concurrent`] runs the streams through a [`ConcEngine`] from
//!    real threads. Every operation comes back with a **seq stamp** the
//!    engine assigned at its linearization point (while holding every
//!    lock the operation used), plus its observed outcome.
//! 3. [`verify_log`] sorts the merged log by seq and replays it through
//!    the Vec-backed oracle engine. If the concurrent execution was
//!    linearizable with FIFO (non-overtaking) matching, every outcome —
//!    which receive matched which message, every probe, every cancel —
//!    agrees with the oracle replaying the same serial order; any lost,
//!    duplicated or overtaken match diverges.
//!
//! Search depths are *not* compared here (they depend on the shard an
//! operation ran in); the lockstep driver already pins them per
//! structure. Probe results are compared exactly — both engines define
//! iprobe on a global-FIFO snapshot.

use std::collections::HashSet;

use crate::driver::ConformEngine;
use crate::oracle::OracleList;
use spc_core::concurrent::SharedEngine;
use spc_core::engine::{ArrivalOutcome, MatchEngine, RecvOutcome};
use spc_core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry, ANY_SOURCE, ANY_TAG};
use spc_core::ingest::{BatchedEngine, IngestOp};
use spc_core::list::MatchList;
use spc_core::shard::ShardedEngine;
use spc_rng::{Rng, SeedableRng, StdRng};

use crate::ops::{CTXS, RANKS, TAGS};

/// One operation in a per-thread concurrent stream.
///
/// Request/payload handles are not stored in the op: each thread issues
/// ids from its own space (`thread << 32 | counter`) as it executes, so
/// streams stay reusable across engines while ids never collide across
/// threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcOp {
    /// `MPI_Irecv`; `None` rank/tag is the wildcard.
    Post {
        /// Concrete source rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Concrete tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Communicator context id.
        ctx: u16,
    },
    /// A message arrival (always fully concrete).
    Arrive {
        /// Message source rank.
        rank: i32,
        /// Message tag.
        tag: i32,
        /// Message context id.
        ctx: u16,
    },
    /// `MPI_Iprobe`.
    Probe {
        /// Requested rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Requested tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Probe context id.
        ctx: u16,
    },
    /// `MPI_Cancel` of the `nth` receive this thread has posted so far
    /// (modulo the count; a thread that has posted nothing cancels a
    /// handle from its id space that was never issued).
    Cancel {
        /// Index into this thread's issued request handles.
        nth: u64,
    },
}

/// The surface a thread-safe engine must expose to the concurrent
/// driver: every workload operation, seq-stamped at its linearization
/// point.
pub trait ConcEngine: Sync {
    /// Seq-stamped [`spc_core::MatchEngine::post_recv`].
    fn post_recv_seq(&self, spec: RecvSpec, request: u64) -> (u64, RecvOutcome);
    /// Seq-stamped [`spc_core::MatchEngine::arrival`].
    fn arrival_seq(&self, env: Envelope, payload: u64) -> (u64, ArrivalOutcome);
    /// Seq-stamped [`spc_core::MatchEngine::cancel_recv`].
    fn cancel_recv_seq(&self, request: u64) -> (u64, bool);
    /// Seq-stamped [`spc_core::MatchEngine::iprobe`].
    fn iprobe_seq(&self, spec: RecvSpec) -> (u64, Option<(u64, u32)>);
    /// Current `(prq, umq)` lengths (quiescent use only).
    fn queue_lens(&self) -> (usize, usize);
    /// Structural invariant check, quiescent use only (the engines take
    /// their own locks). [`run_and_verify`] and the stepped scheduler call
    /// it after the racing threads join, under
    /// `--features debug_invariants`.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

impl<P, U> ConcEngine for SharedEngine<P, U>
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    fn post_recv_seq(&self, spec: RecvSpec, request: u64) -> (u64, RecvOutcome) {
        SharedEngine::post_recv_seq(self, spec, request)
    }
    fn arrival_seq(&self, env: Envelope, payload: u64) -> (u64, ArrivalOutcome) {
        SharedEngine::arrival_seq(self, env, payload)
    }
    fn cancel_recv_seq(&self, request: u64) -> (u64, bool) {
        SharedEngine::cancel_recv_seq(self, request)
    }
    fn iprobe_seq(&self, spec: RecvSpec) -> (u64, Option<(u64, u32)>) {
        SharedEngine::iprobe_seq(self, spec)
    }
    fn queue_lens(&self) -> (usize, usize) {
        SharedEngine::queue_lens(self)
    }
    fn validate(&self) -> Result<(), String> {
        SharedEngine::validate(self)
    }
}

impl<P, U> ConcEngine for ShardedEngine<P, U>
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    fn post_recv_seq(&self, spec: RecvSpec, request: u64) -> (u64, RecvOutcome) {
        ShardedEngine::post_recv_seq(self, spec, request)
    }
    fn arrival_seq(&self, env: Envelope, payload: u64) -> (u64, ArrivalOutcome) {
        ShardedEngine::arrival_seq(self, env, payload)
    }
    fn cancel_recv_seq(&self, request: u64) -> (u64, bool) {
        ShardedEngine::cancel_recv_seq(self, request)
    }
    fn iprobe_seq(&self, spec: RecvSpec) -> (u64, Option<(u64, u32)>) {
        ShardedEngine::iprobe_seq(self, spec)
    }
    fn queue_lens(&self) -> (usize, usize) {
        ShardedEngine::queue_lens(self)
    }
    fn validate(&self) -> Result<(), String> {
        ShardedEngine::validate(self)
    }
}

/// The sharded engine can also run the single-threaded lockstep driver
/// ([`crate::driver::diff_engine`], with [`crate::driver::DepthMode::Bounded`]
/// — shard-local searches legitimately inspect fewer entries). Its
/// `queue_ids` merge the shard indexes in global seq order, so snapshots
/// are compared exactly against the oracle.
impl<P, U> ConformEngine for ShardedEngine<P, U>
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    fn post_recv(&mut self, spec: RecvSpec, request: u64) -> RecvOutcome {
        ShardedEngine::post_recv(self, spec, request)
    }
    fn arrival(&mut self, env: Envelope, payload: u64) -> ArrivalOutcome {
        ShardedEngine::arrival(self, env, payload)
    }
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)> {
        ShardedEngine::iprobe(self, spec)
    }
    fn cancel_recv(&mut self, request: u64) -> bool {
        ShardedEngine::cancel_recv(self, request)
    }
    fn prq_len(&self) -> usize {
        self.queue_lens().0
    }
    fn umq_len(&self) -> usize {
        self.queue_lens().1
    }
    fn reset(&mut self) {
        ShardedEngine::reset(self)
    }
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        Some(ShardedEngine::queue_ids(self))
    }
    fn validate(&self) -> Result<(), String> {
        ShardedEngine::validate(self)
    }
}

/// One executed operation: its seq stamp, the thread that ran it, and the
/// fully-resolved action with its observed outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Linearization stamp the engine assigned.
    pub seq: u64,
    /// Index of the thread that executed the op.
    pub thread: usize,
    /// What ran and what it observed.
    pub action: Action,
}

/// A resolved operation plus its observed outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// A receive post; `matched` is the unexpected payload it consumed,
    /// if any.
    Post {
        /// Requested rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Requested tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Receive context id.
        ctx: u16,
        /// Request handle issued for this receive.
        req: u64,
        /// Payload of the unexpected message it matched, if any.
        matched: Option<u64>,
    },
    /// A message arrival; `matched` is the receive request it satisfied,
    /// if any.
    Arrive {
        /// Message source rank.
        rank: i32,
        /// Message tag.
        tag: i32,
        /// Message context id.
        ctx: u16,
        /// Payload handle issued for this message.
        payload: u64,
        /// Request of the posted receive it matched, if any.
        matched: Option<u64>,
    },
    /// A cancellation attempt and whether it found the receive pending.
    Cancel {
        /// Request handle targeted.
        req: u64,
        /// Whether the receive was still pending.
        hit: bool,
    },
    /// A probe and the `(payload, depth)` it reported.
    Probe {
        /// Requested rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Requested tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Probe context id.
        ctx: u16,
        /// What the probe observed.
        found: Option<(u64, u32)>,
    },
}

fn spec_of(rank: Option<i32>, tag: Option<i32>, ctx: u16) -> RecvSpec {
    RecvSpec::new(rank.unwrap_or(ANY_SOURCE), tag.unwrap_or(ANY_TAG), ctx)
}

/// Sorts a merged log into linearization order: by seq stamp, with
/// probes ahead of a mutating op sharing their stamp. Lock-free probes
/// read the seq counter without claiming a stamp, so a probe stamped `s`
/// observed every writer `< s` and linearizes *before* the writer that
/// next claims `s`.
pub fn sort_log(log: &mut [LogRecord]) {
    log.sort_unstable_by_key(|r| (r.seq, !matches!(r.action, Action::Probe { .. })));
}

/// Per-thread execution state: resolves [`ConcOp`]s to concrete handles
/// from the thread's id space and records seq-stamped outcomes.
pub struct ThreadExec {
    thread: usize,
    posted: u64,
    sent: u64,
}

impl ThreadExec {
    /// Executor for thread index `thread`.
    pub fn new(thread: usize) -> Self {
        Self {
            thread,
            posted: 0,
            sent: 0,
        }
    }

    fn id(&self, counter: u64) -> u64 {
        ((self.thread as u64) << 32) | counter
    }

    /// Executes one op against `eng`, returning its log record.
    pub fn run<E: ConcEngine + ?Sized>(&mut self, eng: &E, op: ConcOp) -> LogRecord {
        let thread = self.thread;
        match op {
            ConcOp::Post { rank, tag, ctx } => {
                let req = self.id(self.posted);
                self.posted += 1;
                let (seq, out) = eng.post_recv_seq(spec_of(rank, tag, ctx), req);
                let matched = match out {
                    RecvOutcome::MatchedUnexpected { payload, .. } => Some(payload),
                    RecvOutcome::Posted => None,
                };
                LogRecord {
                    seq,
                    thread,
                    action: Action::Post {
                        rank,
                        tag,
                        ctx,
                        req,
                        matched,
                    },
                }
            }
            ConcOp::Arrive { rank, tag, ctx } => {
                let payload = self.id(self.sent);
                self.sent += 1;
                let (seq, out) = eng.arrival_seq(Envelope::new(rank, tag, ctx), payload);
                let matched = match out {
                    ArrivalOutcome::MatchedPosted { request, .. } => Some(request),
                    ArrivalOutcome::Queued => None,
                };
                LogRecord {
                    seq,
                    thread,
                    action: Action::Arrive {
                        rank,
                        tag,
                        ctx,
                        payload,
                        matched,
                    },
                }
            }
            ConcOp::Probe { rank, tag, ctx } => {
                let (seq, found) = eng.iprobe_seq(spec_of(rank, tag, ctx));
                LogRecord {
                    seq,
                    thread,
                    action: Action::Probe {
                        rank,
                        tag,
                        ctx,
                        found,
                    },
                }
            }
            ConcOp::Cancel { nth } => {
                // Target one of this thread's own requests; a thread that
                // has posted nothing cancels a handle never issued by
                // anyone (its own id space), observing `false`.
                let req = if self.posted == 0 {
                    self.id(u32::MAX as u64)
                } else {
                    self.id(nth % self.posted)
                };
                let (seq, hit) = eng.cancel_recv_seq(req);
                LogRecord {
                    seq,
                    thread,
                    action: Action::Cancel { req, hit },
                }
            }
        }
    }
}

/// Deals `threads` seeded per-thread streams of `per_thread` ops each.
///
/// The mix keeps both queues busy (≈40 % posts / 40 % arrivals), makes
/// wildcards common enough that the sharded engine's wildcard lane stays
/// hot, and sprinkles probes and cancels through every stream.
pub fn conc_ops(seed: u64, threads: usize, per_thread: usize) -> Vec<Vec<ConcOp>> {
    (0..threads)
        .map(|t| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ ((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            (0..per_thread)
                .map(|_| match rng.gen_range(0..20u32) {
                    0..=7 => {
                        let wild = 0.15;
                        ConcOp::Post {
                            rank: (!rng.gen_bool(wild)).then(|| rng.gen_range(0..RANKS)),
                            tag: (!rng.gen_bool(wild)).then(|| rng.gen_range(0..TAGS)),
                            ctx: rng.gen_range(0..CTXS),
                        }
                    }
                    8..=15 => ConcOp::Arrive {
                        rank: rng.gen_range(0..RANKS),
                        tag: rng.gen_range(0..TAGS),
                        ctx: rng.gen_range(0..CTXS),
                    },
                    16..=17 => ConcOp::Probe {
                        rank: (!rng.gen_bool(0.3)).then(|| rng.gen_range(0..RANKS)),
                        tag: (!rng.gen_bool(0.3)).then(|| rng.gen_range(0..TAGS)),
                        ctx: rng.gen_range(0..CTXS),
                    },
                    _ => ConcOp::Cancel {
                        nth: rng.gen_range(0..1_024u64),
                    },
                })
                .collect()
        })
        .collect()
}

/// Runs the per-thread streams against `eng` from real racing threads and
/// returns the merged log, sorted by seq stamp (the linearization).
pub fn run_concurrent<E: ConcEngine>(eng: &E, streams: &[Vec<ConcOp>]) -> Vec<LogRecord> {
    let per_thread: Vec<Vec<LogRecord>> = std::thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                s.spawn(move || {
                    let mut exec = ThreadExec::new(t);
                    ops.iter().map(|op| exec.run(eng, *op)).collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut log: Vec<LogRecord> = per_thread.into_iter().flatten().collect();
    sort_log(&mut log);
    log
}

/// Runs the per-thread streams against a [`BatchedEngine`] — one ring
/// producer per stream — and returns the merged log in linearization
/// order, *including* the drain log entries for every buffered op.
///
/// Buffered posts and arrivals linearize at drain time, so their log
/// records come from the engine's drain log (which must be enabled, see
/// [`BatchedEngine::with_drain_log`]) rather than from the issuing
/// thread. After the producers join, the rings' exactly-once accounting
/// is checked — `enqueued - drained` must equal the entries still in
/// flight — then [`BatchedEngine::flush_all`] applies the stragglers so
/// the final log covers every op issued.
pub fn run_concurrent_batched<P, U>(
    eng: &BatchedEngine<P, U>,
    streams: &[Vec<ConcOp>],
) -> Result<Vec<LogRecord>, String>
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    assert!(
        streams.len() <= eng.num_producers(),
        "need one ring producer per stream"
    );
    let direct: Vec<Vec<LogRecord>> = std::thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                s.spawn(move || {
                    let p = eng.producer(t);
                    let id = |c: u64| ((t as u64) << 32) | c;
                    let (mut posted, mut sent) = (0u64, 0u64);
                    let mut out = Vec::new();
                    for op in ops {
                        match *op {
                            ConcOp::Post { rank, tag, ctx } => {
                                let req = id(posted);
                                posted += 1;
                                // `None`: buffered — its record surfaces in
                                // the drain log when the ring is applied.
                                if let Some((seq, o)) = p.post_recv(spec_of(rank, tag, ctx), req) {
                                    let matched = match o {
                                        RecvOutcome::MatchedUnexpected { payload, .. } => {
                                            Some(payload)
                                        }
                                        RecvOutcome::Posted => None,
                                    };
                                    out.push(LogRecord {
                                        seq,
                                        thread: t,
                                        action: Action::Post {
                                            rank,
                                            tag,
                                            ctx,
                                            req,
                                            matched,
                                        },
                                    });
                                }
                            }
                            ConcOp::Arrive { rank, tag, ctx } => {
                                let payload = id(sent);
                                sent += 1;
                                p.arrival(Envelope::new(rank, tag, ctx), payload);
                            }
                            ConcOp::Probe { rank, tag, ctx } => {
                                let (seq, found) = p.iprobe_seq(spec_of(rank, tag, ctx));
                                out.push(LogRecord {
                                    seq,
                                    thread: t,
                                    action: Action::Probe {
                                        rank,
                                        tag,
                                        ctx,
                                        found,
                                    },
                                });
                            }
                            ConcOp::Cancel { nth } => {
                                let req = if posted == 0 {
                                    id(u32::MAX as u64)
                                } else {
                                    id(nth % posted)
                                };
                                let (seq, hit) = p.cancel_recv_seq(req);
                                out.push(LogRecord {
                                    seq,
                                    thread: t,
                                    action: Action::Cancel { req, hit },
                                });
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("producer thread panicked"))
            .collect()
    });
    // Exactly-once accounting over the rings, counting entries still in
    // flight at the join, then after the final flush.
    let (enq, drn, pending) = (eng.enqueued(), eng.drained(), eng.pending());
    if enq - drn != pending as u64 {
        return Err(format!(
            "ring accounting broken at join: {enq} enqueued - {drn} drained != {pending} in flight"
        ));
    }
    eng.flush_all();
    if eng.pending() != 0 || eng.enqueued() != eng.drained() {
        return Err(format!(
            "rings not drained by flush_all: {} pending, {} enqueued vs {} drained",
            eng.pending(),
            eng.enqueued(),
            eng.drained()
        ));
    }
    let drain = eng.take_drain_log();
    if drain.len() as u64 != eng.drained() {
        return Err(format!(
            "drain log recorded {} entries but {} ops drained: a buffered op \
             was applied without being logged",
            drain.len(),
            eng.drained()
        ));
    }
    let mut log: Vec<LogRecord> = direct.into_iter().flatten().collect();
    log.extend(drain.into_iter().map(|r| LogRecord {
        seq: r.seq,
        thread: r.producer,
        action: match r.op {
            IngestOp::Post { spec, request } => Action::Post {
                rank: (spec.rank != ANY_SOURCE).then_some(spec.rank),
                tag: (spec.tag != ANY_TAG).then_some(spec.tag),
                ctx: spec.context_id,
                req: request,
                matched: r.matched,
            },
            IngestOp::Arrive { env, payload } => Action::Arrive {
                rank: env.rank,
                tag: env.tag,
                ctx: env.context_id,
                payload,
                matched: r.matched,
            },
        },
    }));
    let issued: usize = streams.iter().map(|s| s.len()).sum();
    if log.len() != issued {
        return Err(format!(
            "log covers {} ops but {issued} were issued: records lost or duplicated",
            log.len()
        ));
    }
    sort_log(&mut log);
    Ok(log)
}

/// Replays a seq-sorted log through the oracle engine, checking that the
/// concurrent execution was a linearizable, exactly-once, FIFO
/// (non-overtaking) matching history.
///
/// `final_lens` is the engine's quiescent `(prq, umq)` after the run; it
/// must equal the oracle's, proving no entry was lost or duplicated in
/// either queue.
pub fn verify_log(log: &[LogRecord], final_lens: (usize, usize)) -> Result<(), String> {
    // Mutating ops claim unique stamps; lock-free probes share the stamp
    // of the writer that claims it next (and linearize before it). So a
    // stamp may repeat only while the earlier record is a probe.
    for w in log.windows(2) {
        let ordered = w[0].seq < w[1].seq
            || (w[0].seq == w[1].seq && matches!(w[0].action, Action::Probe { .. }));
        if !ordered {
            return Err(format!(
                "seq stamps out of linearization order: {} (thread {}) then {} (thread {}) — \
                 only probes may share a stamp, ahead of at most one mutating op",
                w[0].seq, w[0].thread, w[1].seq, w[1].thread
            ));
        }
    }
    let mut reference: MatchEngine<OracleList<PostedEntry>, OracleList<UnexpectedEntry>> =
        MatchEngine::new(OracleList::new(), OracleList::new());
    let mut consumed_payloads: HashSet<u64> = HashSet::new();
    let mut consumed_requests: HashSet<u64> = HashSet::new();
    for (i, r) in log.iter().enumerate() {
        let fail = |what: String| {
            Err(format!(
                "log index {i} (seq {}, thread {}): {what} [{:?}]",
                r.seq, r.thread, r.action
            ))
        };
        match r.action {
            Action::Post {
                rank,
                tag,
                ctx,
                req,
                matched,
            } => {
                let want = match reference.post_recv(spec_of(rank, tag, ctx), req) {
                    RecvOutcome::MatchedUnexpected { payload, .. } => Some(payload),
                    RecvOutcome::Posted => None,
                };
                if matched != want {
                    return fail(format!("post matched {matched:?}, oracle {want:?}"));
                }
                if let Some(p) = matched {
                    if !consumed_payloads.insert(p) {
                        return fail(format!("payload {p} matched twice"));
                    }
                }
            }
            Action::Arrive {
                rank,
                tag,
                ctx,
                payload,
                matched,
            } => {
                let want = match reference.arrival(Envelope::new(rank, tag, ctx), payload) {
                    ArrivalOutcome::MatchedPosted { request, .. } => Some(request),
                    ArrivalOutcome::Queued => None,
                };
                if matched != want {
                    return fail(format!("arrival matched {matched:?}, oracle {want:?}"));
                }
                if let Some(q) = matched {
                    if !consumed_requests.insert(q) {
                        return fail(format!("request {q} matched twice"));
                    }
                }
            }
            Action::Cancel { req, hit } => {
                let want = reference.cancel_recv(req);
                if hit != want {
                    return fail(format!("cancel({req}) -> {hit}, oracle {want}"));
                }
            }
            Action::Probe {
                rank,
                tag,
                ctx,
                found,
            } => {
                let want = reference.iprobe(spec_of(rank, tag, ctx));
                if found != want {
                    return fail(format!("probe saw {found:?}, oracle {want:?}"));
                }
            }
        }
    }
    let want_lens = (reference.prq_len(), reference.umq_len());
    if final_lens != want_lens {
        return Err(format!(
            "final queue lens {final_lens:?}, oracle {want_lens:?}: entries lost or duplicated"
        ));
    }
    Ok(())
}

/// Convenience: [`run_concurrent`] then [`verify_log`] with the engine's
/// quiescent queue lengths. Under `--features debug_invariants`, the
/// engine's structural validators also run at the quiescent point after
/// the racing threads join.
pub fn run_and_verify<E: ConcEngine>(eng: &E, streams: &[Vec<ConcOp>]) -> Result<(), String> {
    let log = run_concurrent(eng, streams);
    #[cfg(feature = "debug_invariants")]
    eng.validate()
        .map_err(|e| format!("invariant violation after join: {e}"))?;
    verify_log(&log, eng.queue_lens())
}

/// Convenience for the batched engine: builds a
/// [`BatchedEngine`] (one producer per stream, drain log enabled), races
/// the streams through the rings, then verifies the merged
/// direct-plus-drain log against the oracle. Under
/// `--features debug_invariants`, the wrapped engine's structural
/// validators also run at the quiescent point after the final flush.
pub fn run_and_verify_batched<P, U>(
    streams: &[Vec<ConcOp>],
    shards: usize,
    batch: usize,
    mk_prq: impl FnMut() -> P,
    mk_umq: impl FnMut() -> U,
) -> Result<(), String>
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    let eng = BatchedEngine::new(shards, streams.len(), batch, mk_prq, mk_umq).with_drain_log();
    let log = run_concurrent_batched(&eng, streams)?;
    #[cfg(feature = "debug_invariants")]
    eng.validate()
        .map_err(|e| format!("invariant violation after final flush: {e}"))?;
    verify_log(&log, eng.queue_lens())
}

/// Op count scale factor for the concurrent suites: reads
/// `SPC_CONC_OPS_MULT` (a positive integer; defaults to 1). CI's stress
/// job raises it to run the same tests over much longer histories.
pub fn stress_multiplier() -> usize {
    std::env::var("SPC_CONC_OPS_MULT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&m| m > 0)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_core::list::Lla;

    type Shared = SharedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>;
    type Sharded = ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>;

    #[test]
    fn streams_are_deterministic_and_distinct_per_thread() {
        let a = conc_ops(9, 4, 200);
        assert_eq!(a, conc_ops(9, 4, 200));
        assert_eq!(a.len(), 4);
        assert_ne!(a[0], a[1], "threads must not replay identical streams");
        assert!(a.iter().flatten().any(|o| matches!(
            o,
            ConcOp::Post { rank: None, .. } | ConcOp::Post { tag: None, .. }
        )));
    }

    #[test]
    fn shared_engine_history_is_linearizable() {
        let eng = Shared::new(MatchEngine::new(Lla::new(), Lla::new()));
        run_and_verify(&eng, &conc_ops(1, 4, 1_000)).unwrap();
    }

    #[test]
    fn sharded_engine_history_is_linearizable() {
        let eng = Sharded::new(4, Lla::new, Lla::new);
        run_and_verify(&eng, &conc_ops(2, 4, 1_000)).unwrap();
    }

    #[test]
    fn batched_engine_history_is_linearizable() {
        run_and_verify_batched::<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>(
            &conc_ops(3, 4, 1_000),
            4,
            16,
            Lla::new,
            Lla::new,
        )
        .unwrap();
    }

    #[test]
    fn verify_rejects_a_duplicated_match() {
        // Hand-build a log where one payload satisfies two receives.
        let post = |seq, req| LogRecord {
            seq,
            thread: 0,
            action: Action::Post {
                rank: Some(1),
                tag: Some(1),
                ctx: 0,
                req,
                matched: Some(7),
            },
        };
        let arrive = LogRecord {
            seq: 0,
            thread: 0,
            action: Action::Arrive {
                rank: 1,
                tag: 1,
                ctx: 0,
                payload: 7,
                matched: None,
            },
        };
        let err = verify_log(&[arrive, post(1, 10), post(2, 11)], (0, 0)).unwrap_err();
        assert!(err.contains("oracle"), "{err}");
    }

    #[test]
    fn verify_rejects_duplicate_seq_stamps_on_mutating_ops() {
        let cancel = |seq| LogRecord {
            seq,
            thread: 0,
            action: Action::Cancel { req: 9, hit: false },
        };
        let probe = |seq| LogRecord {
            seq,
            thread: 0,
            action: Action::Probe {
                rank: None,
                tag: None,
                ctx: 0,
                found: None,
            },
        };
        // Two mutating ops must never share a stamp; neither may a
        // mutating op precede a probe with the same stamp.
        let err = verify_log(&[cancel(3), cancel(3)], (0, 0)).unwrap_err();
        assert!(err.contains("share a stamp"), "{err}");
        let err = verify_log(&[cancel(3), probe(3)], (0, 0)).unwrap_err();
        assert!(err.contains("share a stamp"), "{err}");
        // Lock-free probes legitimately share the stamp of the writer
        // that claims it next — probes-first groups are a linearization.
        verify_log(&[probe(3), probe(3), cancel(3), cancel(4)], (0, 0)).unwrap();
    }

    #[test]
    fn verify_rejects_lost_entries() {
        // Log says the queue drained, engine says one entry remains.
        let err = verify_log(&[], (1, 0)).unwrap_err();
        assert!(err.contains("lens"), "{err}");
    }
}
