//! Deliberately broken structures used to validate the harness itself.
//!
//! A differential harness that never fires is indistinguishable from one
//! that cannot fire. [`FifoViolator`] injects the classic matching bug —
//! violating MPI non-overtaking by returning the *newest* matching entry
//! when several match — and the adversary tests assert the driver
//! catches it and that shrinking reduces the repro to a few ops.

use spc_core::entry::Element;
use spc_core::list::{Footprint, MatchList, Search};
use spc_core::sink::AccessSink;

/// Wraps a correct [`MatchList`] but breaks FIFO non-overtaking: when two
/// or more stored entries match a probe, `search_remove` returns the one
/// appended *last* instead of first. With zero or one candidate it
/// behaves correctly — the bug only shows under concurrent matches,
/// which is exactly the case a weak test stream never produces.
pub struct FifoViolator<L> {
    inner: L,
}

impl<L> FifoViolator<L> {
    /// Wraps `inner`.
    pub fn new(inner: L) -> Self {
        Self { inner }
    }
}

impl<E: Element, L: MatchList<E>> MatchList<E> for FifoViolator<L> {
    fn append<S: AccessSink>(&mut self, e: E, sink: &mut S) {
        self.inner.append(e, sink);
    }

    fn search_remove<S: AccessSink>(&mut self, probe: &E::Probe, sink: &mut S) -> Search<E> {
        let snap = self.inner.snapshot();
        let candidates: Vec<(usize, u64)> = snap
            .iter()
            .enumerate()
            .filter(|(_, e)| e.matches(probe))
            .map(|(pos, e)| (pos, e.id()))
            .collect();
        if candidates.len() >= 2 {
            // The violation: take the newest match.
            let &(pos, id) = candidates.last().expect("len >= 2");
            let e = self
                .inner
                .remove_by_id(id, sink)
                .expect("snapshot entry must be removable");
            return Search::hit(e, pos as u32 + 1);
        }
        self.inner.search_remove(probe, sink)
    }

    fn remove_by_id<S: AccessSink>(&mut self, id: u64, sink: &mut S) -> Option<E> {
        self.inner.remove_by_id(id, sink)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn snapshot(&self) -> Vec<E> {
        self.inner.snapshot()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn footprint(&self) -> Footprint {
        self.inner.footprint()
    }

    fn heat_regions(&self, out: &mut Vec<(u64, u64)>) {
        self.inner.heat_regions(out);
    }

    fn kind_name(&self) -> String {
        format!("fifo-violator({})", self.inner.kind_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_core::entry::{Envelope, PostedEntry, RecvSpec};
    use spc_core::list::BaselineList;
    use spc_core::NullSink;

    #[test]
    fn violator_overtakes_on_double_match() {
        let mut l = FifoViolator::new(BaselineList::<PostedEntry>::new());
        let mut s = NullSink;
        l.append(PostedEntry::from_spec(RecvSpec::new(1, 1, 0), 10), &mut s);
        l.append(PostedEntry::from_spec(RecvSpec::new(1, 1, 0), 11), &mut s);
        let r = l.search_remove(&Envelope::new(1, 1, 0), &mut s);
        assert_eq!(
            r.found.unwrap().request,
            11,
            "the adversary must return the newest"
        );
    }

    #[test]
    fn violator_is_correct_with_a_single_candidate() {
        let mut l = FifoViolator::new(BaselineList::<PostedEntry>::new());
        let mut s = NullSink;
        l.append(PostedEntry::from_spec(RecvSpec::new(1, 1, 0), 10), &mut s);
        l.append(PostedEntry::from_spec(RecvSpec::new(2, 2, 0), 11), &mut s);
        let r = l.search_remove(&Envelope::new(2, 2, 0), &mut s);
        assert_eq!(r.found.unwrap().request, 11);
        assert_eq!(l.len(), 1);
    }
}
