//! Seeded operation-stream generators.
//!
//! All generators are pure functions of their seed: the same seed always
//! yields the same stream, so any failure the driver reports reproduces
//! exactly from the seed alone. Streams mix wildcards, several
//! communicators, cancels of plausible request handles, rare clears, and
//! *burst* phases that append many entries back-to-back so deep-queue
//! paths (multi-node LLA walks, bin merges, trie leaf chains) are
//! actually exercised rather than only 0–2-entry queues.

use spc_rng::{Rng, SeedableRng, StdRng};

/// Source ranks used by generated streams (kept small so probes collide
/// with stored entries often — misses on every op would test nothing).
pub const RANKS: i32 = 8;
/// Tags used by generated streams.
pub const TAGS: i32 = 4;
/// Communicator context ids used by generated streams.
pub const CTXS: u16 = 2;

/// One operation against a posted-receive-queue structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostedOp {
    /// Append a posted entry; `None` rank/tag means the wildcard.
    Append {
        /// Concrete source rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Concrete tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Communicator context id.
        ctx: u16,
    },
    /// Destructively search with a concrete message envelope.
    Search {
        /// Envelope source rank.
        rank: i32,
        /// Envelope tag.
        tag: i32,
        /// Envelope context id.
        ctx: u16,
    },
    /// Cancel (remove by id) the request handle `req`.
    Cancel {
        /// Request handle to cancel; handles are assigned 0,1,2,… by the
        /// driver, so small values usually name a live or recent entry.
        req: u64,
    },
    /// Remove every entry (communicator teardown).
    Clear,
}

/// One operation against an unexpected-message-queue structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UmqOp {
    /// A message arrives (always fully concrete).
    Arrive {
        /// Message source rank.
        rank: i32,
        /// Message tag.
        tag: i32,
        /// Message context id.
        ctx: u16,
    },
    /// Destructively search with a receive specification.
    Recv {
        /// Requested rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Requested tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Receive context id.
        ctx: u16,
    },
    /// Remove every entry.
    Clear,
}

/// One operation against a whole matching engine (PRQ + UMQ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineOp {
    /// `MPI_Irecv`: search the UMQ, else append to the PRQ.
    PostRecv {
        /// Requested rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Requested tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Receive context id.
        ctx: u16,
    },
    /// Message arrival: search the PRQ, else append to the UMQ.
    Arrival {
        /// Message source rank.
        rank: i32,
        /// Message tag.
        tag: i32,
        /// Message context id.
        ctx: u16,
    },
    /// `MPI_Iprobe`: non-destructive UMQ search.
    Iprobe {
        /// Requested rank, or `None` for `MPI_ANY_SOURCE`.
        rank: Option<i32>,
        /// Requested tag, or `None` for `MPI_ANY_TAG`.
        tag: Option<i32>,
        /// Probe context id.
        ctx: u16,
    },
    /// `MPI_Cancel` of the `nth` request handle issued so far.
    Cancel {
        /// Index into the handles issued so far (driver takes it modulo
        /// the number issued).
        nth: u64,
    },
    /// Reset both queues (communicator teardown / test epoch boundary).
    Clear,
}

fn gen_spec(rng: &mut StdRng, wild_p: f64) -> (Option<i32>, Option<i32>, u16) {
    (
        (!rng.gen_bool(wild_p)).then(|| rng.gen_range(0..RANKS)),
        (!rng.gen_bool(wild_p)).then(|| rng.gen_range(0..TAGS)),
        rng.gen_range(0..CTXS),
    )
}

/// Generates `n` posted-queue operations from `seed`.
pub fn posted_ops(seed: u64, n: usize) -> Vec<PostedOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        if rng.gen_bool(0.06) {
            // Burst: build a deep queue before the next searches.
            for _ in 0..rng.gen_range(4..32usize) {
                let (rank, tag, ctx) = gen_spec(&mut rng, 0.2);
                ops.push(PostedOp::Append { rank, tag, ctx });
            }
            continue;
        }
        ops.push(match rng.gen_range(0..20u32) {
            0..=8 => {
                let (rank, tag, ctx) = gen_spec(&mut rng, 0.2);
                PostedOp::Append { rank, tag, ctx }
            }
            9..=15 => PostedOp::Search {
                rank: rng.gen_range(0..RANKS),
                tag: rng.gen_range(0..TAGS),
                ctx: rng.gen_range(0..CTXS),
            },
            16..=18 => PostedOp::Cancel {
                req: rng.gen_range(0..64u64),
            },
            _ => PostedOp::Clear,
        });
    }
    ops.truncate(n);
    ops
}

/// Generates `n` unexpected-queue operations from `seed`.
pub fn umq_ops(seed: u64, n: usize) -> Vec<UmqOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        if rng.gen_bool(0.06) {
            for _ in 0..rng.gen_range(4..32usize) {
                ops.push(UmqOp::Arrive {
                    rank: rng.gen_range(0..RANKS),
                    tag: rng.gen_range(0..TAGS),
                    ctx: rng.gen_range(0..CTXS),
                });
            }
            continue;
        }
        ops.push(match rng.gen_range(0..20u32) {
            0..=8 => UmqOp::Arrive {
                rank: rng.gen_range(0..RANKS),
                tag: rng.gen_range(0..TAGS),
                ctx: rng.gen_range(0..CTXS),
            },
            9..=18 => {
                let (rank, tag, ctx) = gen_spec(&mut rng, 0.3);
                UmqOp::Recv { rank, tag, ctx }
            }
            _ => UmqOp::Clear,
        });
    }
    ops.truncate(n);
    ops
}

/// Generates `n` engine-level operations from `seed`.
pub fn engine_ops(seed: u64, n: usize) -> Vec<EngineOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        if rng.gen_bool(0.06) {
            // Burst one side of the engine so its queue grows deep.
            let posted = rng.gen_bool(0.5);
            for _ in 0..rng.gen_range(4..32usize) {
                ops.push(if posted {
                    let (rank, tag, ctx) = gen_spec(&mut rng, 0.2);
                    EngineOp::PostRecv { rank, tag, ctx }
                } else {
                    EngineOp::Arrival {
                        rank: rng.gen_range(0..RANKS),
                        tag: rng.gen_range(0..TAGS),
                        ctx: rng.gen_range(0..CTXS),
                    }
                });
            }
            continue;
        }
        ops.push(match rng.gen_range(0..24u32) {
            0..=7 => {
                let (rank, tag, ctx) = gen_spec(&mut rng, 0.2);
                EngineOp::PostRecv { rank, tag, ctx }
            }
            8..=15 => EngineOp::Arrival {
                rank: rng.gen_range(0..RANKS),
                tag: rng.gen_range(0..TAGS),
                ctx: rng.gen_range(0..CTXS),
            },
            16..=18 => {
                let (rank, tag, ctx) = gen_spec(&mut rng, 0.3);
                EngineOp::Iprobe { rank, tag, ctx }
            }
            19..=22 => EngineOp::Cancel {
                nth: rng.gen_range(0..64u64),
            },
            _ => EngineOp::Clear,
        });
    }
    ops.truncate(n);
    ops
}

/// Generates `n` engine-level operations from `seed`, biased hard toward
/// wildcard traffic: storms of arrivals across every rank alternate with
/// bursts of `MPI_ANY_SOURCE`/`MPI_ANY_TAG` receives that drain them (and
/// with bursts of wildcard receives posted *first*, so arrivals must pick
/// the oldest among several resident wildcards).
///
/// The uniform mix in [`engine_ops`] produces wildcards too, but rarely
/// several *resident* at once; this stream keeps the wildcard-vs-concrete
/// arbitration paths (bin merges, trie global scans, a sharded engine's
/// wildcard lane) continuously busy.
pub fn engine_ops_wild_bursts(seed: u64, n: usize) -> Vec<EngineOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        match rng.gen_range(0..4u32) {
            // Arrival storm across all ranks, then wild receives drain it.
            0 => {
                let ctx = rng.gen_range(0..CTXS);
                let storm = rng.gen_range(6..24usize);
                for _ in 0..storm {
                    ops.push(EngineOp::Arrival {
                        rank: rng.gen_range(0..RANKS),
                        tag: rng.gen_range(0..TAGS),
                        ctx,
                    });
                }
                for _ in 0..rng.gen_range(1..storm + 1) {
                    ops.push(EngineOp::PostRecv {
                        rank: None,
                        tag: (!rng.gen_bool(0.5)).then(|| rng.gen_range(0..TAGS)),
                        ctx,
                    });
                }
            }
            // Wildcards posted first; racing arrivals must take the oldest.
            1 => {
                let ctx = rng.gen_range(0..CTXS);
                let wilds = rng.gen_range(2..8usize);
                for _ in 0..wilds {
                    ops.push(EngineOp::PostRecv {
                        rank: None,
                        tag: (!rng.gen_bool(0.5)).then(|| rng.gen_range(0..TAGS)),
                        ctx,
                    });
                }
                for _ in 0..rng.gen_range(wilds..2 * wilds) {
                    ops.push(EngineOp::Arrival {
                        rank: rng.gen_range(0..RANKS),
                        tag: rng.gen_range(0..TAGS),
                        ctx,
                    });
                }
            }
            // Mixed wild and concrete posts, interleaved with arrivals.
            2 => {
                for _ in 0..rng.gen_range(4..16usize) {
                    let (rank, tag, ctx) = gen_spec(&mut rng, 0.5);
                    ops.push(EngineOp::PostRecv { rank, tag, ctx });
                    if rng.gen_bool(0.6) {
                        ops.push(EngineOp::Arrival {
                            rank: rng.gen_range(0..RANKS),
                            tag: rng.gen_range(0..TAGS),
                            ctx: rng.gen_range(0..CTXS),
                        });
                    }
                }
            }
            // Probes (mostly wildcarded), cancels, rare clears.
            _ => {
                for _ in 0..rng.gen_range(2..8usize) {
                    ops.push(match rng.gen_range(0..8u32) {
                        0..=4 => {
                            let (rank, tag, ctx) = gen_spec(&mut rng, 0.6);
                            EngineOp::Iprobe { rank, tag, ctx }
                        }
                        5..=6 => EngineOp::Cancel {
                            nth: rng.gen_range(0..64u64),
                        },
                        _ => EngineOp::Clear,
                    });
                }
            }
        }
    }
    ops.truncate(n);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(posted_ops(42, 500), posted_ops(42, 500));
        assert_eq!(umq_ops(42, 500), umq_ops(42, 500));
        assert_eq!(engine_ops(42, 500), engine_ops(42, 500));
        assert_ne!(engine_ops(42, 500), engine_ops(43, 500));
    }

    #[test]
    fn wild_burst_streams_are_wildcard_heavy_and_deterministic() {
        let ops = engine_ops_wild_bursts(11, 2_000);
        assert_eq!(ops.len(), 2_000);
        assert_eq!(ops, engine_ops_wild_bursts(11, 2_000));
        let posts: Vec<_> = ops
            .iter()
            .filter_map(|o| match o {
                EngineOp::PostRecv { rank, .. } => Some(rank),
                _ => None,
            })
            .collect();
        let wild_posts = posts.iter().filter(|r| r.is_none()).count();
        assert!(
            wild_posts * 2 >= posts.len(),
            "most receives must wildcard the source ({wild_posts}/{})",
            posts.len()
        );
        assert!(ops
            .iter()
            .any(|o| matches!(o, EngineOp::Iprobe { rank: None, .. })));
    }

    #[test]
    fn streams_have_the_requested_length_and_mix() {
        let ops = engine_ops(7, 2_000);
        assert_eq!(ops.len(), 2_000);
        let posts = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::PostRecv { .. }))
            .count();
        let arrivals = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::Arrival { .. }))
            .count();
        let probes = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::Iprobe { .. }))
            .count();
        let cancels = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::Cancel { .. }))
            .count();
        assert!(
            posts > 200 && arrivals > 200,
            "both queues must be exercised"
        );
        assert!(
            probes > 20 && cancels > 20,
            "probe and cancel paths must be exercised"
        );
        // Wildcards must actually appear.
        assert!(ops.iter().any(|o| matches!(
            o,
            EngineOp::PostRecv { rank: None, .. } | EngineOp::PostRecv { tag: None, .. }
        )));
    }
}
