//! # spc-conformance — differential conformance harness
//!
//! Every match-list structure in `spc-core` must be *behaviourally
//! interchangeable*: same probes, same matches, same MPI non-overtaking
//! order. This crate checks that claim the blunt way — by differential
//! testing against a model so simple it is obviously correct:
//!
//! * [`oracle::OracleList`] — a `Vec`-backed [`spc_core::list::MatchList`]
//!   whose every operation is a linear scan in append order. No holes, no
//!   bins, no sequence arithmetic; if this is wrong, the semantics in
//!   `spc-core/src/entry.rs` are wrong.
//! * [`ops`] — deterministic, seeded generators of randomized operation
//!   streams (appends/searches/cancels/clears at the list level;
//!   post/arrival/iprobe/cancel/reset at the engine level), with burst
//!   phases that build deep queues and configurable wildcard rates.
//! * [`driver`] — replays a stream through the oracle and a subject
//!   simultaneously, comparing outcomes, lengths, depths and snapshots
//!   after every step, and reporting the first divergence. Its bounded
//!   variant ([`driver::diff_engine_bounded`]) drives the admission-capped
//!   `try_*` path and additionally compares which operations are rejected
//!   and the rejection counters.
//! * [`shrink`] — a delta-debugging minimizer that reduces a failing
//!   stream to a locally-minimal one and renders it as a paste-able unit
//!   test body.
//! * [`adversary`] — deliberately broken structures (e.g.
//!   [`adversary::FifoViolator`]) used to prove the harness actually
//!   catches bugs, not just agreements.
//! * [`concurrent`] — the concurrent differential driver: N real threads
//!   race seeded streams through a thread-safe engine, every operation is
//!   seq-stamped at its linearization point, and the seq-sorted log is
//!   replayed through the oracle to verify linearizable, exactly-once,
//!   non-overtaking matching.
//! * [`sched`] — deterministic interleaving testing: channel-gated
//!   threads driven one op at a time through exhaustive (or seeded
//!   sampled) interleavings of short race scenarios.
//!
//! ## Depth comparison
//!
//! Search depth is *the* quantity the paper measures, so the harness
//! checks it — but exact equality with the oracle is only contractual for
//! linear structures (`BaselineList`, `Lla`), where a hit's depth is the
//! 1-based FIFO position of the match among live entries. Partitioned
//! structures (`SourceBins`, `HashBins`, `RankTrie`) legitimately inspect
//! fewer entries — that is their entire point — so for them the harness
//! checks the bounds every implementation must satisfy: a hit inspects at
//! least one entry, and no search inspects more entries than are live.
//! See the contract on [`spc_core::list::MatchList::search_remove`].

#![warn(missing_docs)]

pub mod adversary;
pub mod concurrent;
pub mod driver;
pub mod ops;
pub mod oracle;
pub mod sched;
pub mod shrink;

pub use adversary::FifoViolator;
pub use concurrent::{
    conc_ops, run_and_verify, run_concurrent, verify_log, Action, ConcEngine, ConcOp, LogRecord,
};
pub use driver::{
    diff_dyn_engine, diff_engine, diff_engine_bounded, diff_posted, diff_umq, BoundedConformEngine,
    DepthMode, Divergence,
};
pub use ops::{engine_ops, engine_ops_wild_bursts, posted_ops, umq_ops, EngineOp, PostedOp, UmqOp};
pub use oracle::OracleList;
pub use sched::{interleavings, run_stepped, sampled_schedules};
pub use shrink::{render_ops, shrink_ops};
