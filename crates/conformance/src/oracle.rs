//! The reference oracle: a `Vec` scanned linearly in append order.
//!
//! This is deliberately the dumbest possible implementation of
//! [`MatchList`]. Correctness must be visible by inspection:
//!
//! * `append` pushes to the back;
//! * `search_remove` scans from the front and removes the first element
//!   that matches — which *is* MPI non-overtaking, by construction;
//! * `remove_by_id` scans from the front and removes the first element
//!   with the given id;
//! * depth is the number of elements inspected (1-based position of a
//!   hit; the live length on a miss), matching the exact-depth contract
//!   linear structures are held to.
//!
//! The oracle models semantics only. It reports no simulated memory
//! traffic to the [`AccessSink`] — differential runs compare observable
//! matching behaviour, not locality.

use spc_core::entry::Element;
use spc_core::list::{Footprint, MatchList, Search};
use spc_core::sink::AccessSink;

/// Vec-backed reference implementation of [`MatchList`].
#[derive(Clone, Debug, Default)]
pub struct OracleList<E> {
    items: Vec<E>,
}

impl<E> OracleList<E> {
    /// Creates an empty oracle queue.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }
}

impl<E: Element> MatchList<E> for OracleList<E> {
    fn append<S: AccessSink>(&mut self, e: E, _sink: &mut S) {
        self.items.push(e);
    }

    fn search_remove<S: AccessSink>(&mut self, probe: &E::Probe, _sink: &mut S) -> Search<E> {
        for (pos, e) in self.items.iter().enumerate() {
            if e.matches(probe) {
                let e = self.items.remove(pos);
                return Search::hit(e, pos as u32 + 1);
            }
        }
        Search::miss(self.items.len() as u32)
    }

    fn remove_by_id<S: AccessSink>(&mut self, id: u64, _sink: &mut S) -> Option<E> {
        let pos = self.items.iter().position(|e| e.id() == id)?;
        Some(self.items.remove(pos))
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn snapshot(&self) -> Vec<E> {
        self.items.clone()
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            bytes: (self.items.capacity() * core::mem::size_of::<E>()) as u64,
            allocations: 1,
        }
    }

    fn heat_regions(&self, _out: &mut Vec<(u64, u64)>) {
        // The oracle has no simulated address space.
    }

    fn kind_name(&self) -> String {
        "oracle".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_core::entry::{Envelope, PostedEntry, RecvSpec, ANY_SOURCE, ANY_TAG};
    use spc_core::NullSink;

    fn post(rank: i32, tag: i32, req: u64) -> PostedEntry {
        PostedEntry::from_spec(RecvSpec::new(rank, tag, 0), req)
    }

    #[test]
    fn earliest_match_wins_and_depth_is_position() {
        let mut l: OracleList<PostedEntry> = OracleList::new();
        let mut s = NullSink;
        l.append(post(1, 9, 0), &mut s);
        l.append(post(2, 7, 1), &mut s);
        l.append(post(2, 7, 2), &mut s);
        let r = l.search_remove(&Envelope::new(2, 7, 0), &mut s);
        assert_eq!(r.found.unwrap().request, 1);
        assert_eq!(r.depth, 2);
        let r = l.search_remove(&Envelope::new(0, 0, 0), &mut s);
        assert!(r.found.is_none());
        assert_eq!(r.depth, 2, "miss inspects every live entry");
    }

    #[test]
    fn wildcard_posted_entries_match_in_fifo_order() {
        let mut l: OracleList<PostedEntry> = OracleList::new();
        let mut s = NullSink;
        l.append(
            PostedEntry::from_spec(RecvSpec::new(ANY_SOURCE, ANY_TAG, 0), 10),
            &mut s,
        );
        l.append(post(3, 3, 11), &mut s);
        let r = l.search_remove(&Envelope::new(3, 3, 0), &mut s);
        assert_eq!(
            r.found.unwrap().request,
            10,
            "earlier wildcard overtakes nothing"
        );
    }

    #[test]
    fn remove_by_id_takes_the_earliest() {
        let mut l: OracleList<PostedEntry> = OracleList::new();
        let mut s = NullSink;
        l.append(post(1, 1, 5), &mut s);
        l.append(post(2, 2, 6), &mut s);
        assert_eq!(l.remove_by_id(6, &mut s).unwrap().request, 6);
        assert!(l.remove_by_id(6, &mut s).is_none());
        assert_eq!(l.len(), 1);
        l.clear();
        assert!(l.is_empty());
    }
}
