//! The conformance run: every match-list structure and every engine
//! configuration replays ≥10,000 randomized operations against the
//! Vec-backed oracle under fixed seeds.
//!
//! On failure, the assertion message contains a shrunk, paste-able repro
//! (see `fail()` below), not the 10,000-op haystack.

use spc_conformance::{
    diff_dyn_engine, diff_engine, diff_posted, diff_umq, engine_ops, engine_ops_wild_bursts,
    posted_ops, render_ops, shrink_ops, umq_ops, DepthMode, EngineOp,
};
use spc_core::dynengine::EngineKind;
use spc_core::engine::MatchEngine;
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::{BaselineList, HashBins, Lla, MatchList, RankTrie, SourceBins};
use spc_core::shard::ShardedEngine;

/// Ops per structure per stream; two streams (posted + umq) at the list
/// level and one engine stream per kind, so every structure pair sees
/// well over the 10,000-op floor.
const N_OPS: usize = 10_000;
const SEED: u64 = 0x5EED_C04F;

fn check_posted<L: spc_core::list::MatchList<PostedEntry>>(
    mk: impl Fn() -> L,
    mode: DepthMode,
    seed: u64,
) {
    let ops = posted_ops(seed, N_OPS);
    if let Err(e) = diff_posted(&mut mk(), mode, &ops) {
        let min = shrink_ops(&ops, |s| diff_posted(&mut mk(), mode, s).is_err());
        panic!(
            "conformance divergence: {e}\nminimized repro ({} ops):\n{}",
            min.len(),
            render_ops("PostedOp", &min)
        );
    }
}

fn check_umq<L: spc_core::list::MatchList<UnexpectedEntry>>(
    mk: impl Fn() -> L,
    mode: DepthMode,
    seed: u64,
) {
    let ops = umq_ops(seed, N_OPS);
    if let Err(e) = diff_umq(&mut mk(), mode, &ops) {
        let min = shrink_ops(&ops, |s| diff_umq(&mut mk(), mode, s).is_err());
        panic!(
            "conformance divergence: {e}\nminimized repro ({} ops):\n{}",
            min.len(),
            render_ops("UmqOp", &min)
        );
    }
}

#[test]
fn baseline_conforms() {
    check_posted(BaselineList::<PostedEntry>::new, DepthMode::Exact, SEED);
    check_umq(
        BaselineList::<UnexpectedEntry>::new,
        DepthMode::Exact,
        SEED ^ 1,
    );
}

#[test]
fn lla2_conforms() {
    check_posted(
        Lla::<PostedEntry, 2>::new,
        DepthMode::Exact,
        SEED.wrapping_add(2),
    );
    check_umq(
        Lla::<UnexpectedEntry, 3>::new,
        DepthMode::Exact,
        SEED.wrapping_add(3),
    );
}

#[test]
fn lla8_conforms() {
    check_posted(
        Lla::<PostedEntry, 8>::new,
        DepthMode::Exact,
        SEED.wrapping_add(8),
    );
    check_umq(
        Lla::<UnexpectedEntry, 12>::new,
        DepthMode::Exact,
        SEED.wrapping_add(9),
    );
}

#[test]
fn lla512_conforms() {
    check_posted(
        Lla::<PostedEntry, 512>::new,
        DepthMode::Exact,
        SEED.wrapping_add(512),
    );
    check_umq(
        Lla::<UnexpectedEntry, 768>::new,
        DepthMode::Exact,
        SEED.wrapping_add(513),
    );
}

#[test]
fn source_bins_conforms() {
    check_posted(
        || SourceBins::<PostedEntry>::new(spc_conformance::ops::RANKS as usize),
        DepthMode::Bounded,
        SEED.wrapping_add(20),
    );
    check_umq(
        || SourceBins::<UnexpectedEntry>::new(spc_conformance::ops::RANKS as usize),
        DepthMode::Bounded,
        SEED.wrapping_add(21),
    );
}

#[test]
fn hash_bins_conforms() {
    // Few bins on purpose: force collisions and the merge path.
    check_posted(
        || HashBins::<PostedEntry>::with_bins(4),
        DepthMode::Bounded,
        SEED.wrapping_add(30),
    );
    check_umq(
        || HashBins::<UnexpectedEntry>::with_bins(4),
        DepthMode::Bounded,
        SEED.wrapping_add(31),
    );
}

#[test]
fn rank_trie_conforms() {
    check_posted(
        || RankTrie::<PostedEntry>::new(spc_conformance::ops::RANKS as usize),
        DepthMode::Bounded,
        SEED.wrapping_add(40),
    );
    check_umq(
        || RankTrie::<UnexpectedEntry>::new(spc_conformance::ops::RANKS as usize),
        DepthMode::Bounded,
        SEED.wrapping_add(41),
    );
}

/// Engine-level conformance for every runtime-selectable configuration,
/// including the `DynEngine` dispatch layer itself.
#[test]
fn dyn_engines_conform() {
    let kinds = [
        (EngineKind::Baseline, DepthMode::Exact),
        (EngineKind::Lla { arity: 2 }, DepthMode::Exact),
        (EngineKind::Lla { arity: 8 }, DepthMode::Exact),
        (EngineKind::Lla { arity: 512 }, DepthMode::Exact),
        (
            EngineKind::SourceBins {
                comm_size: spc_conformance::ops::RANKS as usize,
            },
            DepthMode::Bounded,
        ),
        (EngineKind::HashBins { bins: 4 }, DepthMode::Bounded),
        (
            EngineKind::RankTrie {
                capacity: spc_conformance::ops::RANKS as usize,
            },
            DepthMode::Bounded,
        ),
    ];
    for (i, (kind, mode)) in kinds.iter().enumerate() {
        let ops = engine_ops(SEED.wrapping_add(100 + i as u64), N_OPS);
        if let Err(e) = diff_dyn_engine(*kind, *mode, &ops) {
            let min = shrink_ops(&ops, |s| diff_dyn_engine(*kind, *mode, s).is_err());
            panic!(
                "{}: conformance divergence: {e}\nminimized repro ({} ops):\n{}",
                kind.label(),
                min.len(),
                render_ops("EngineOp", &min)
            );
        }
    }
}

/// Statically-typed engines expose their queues, so this run also checks
/// PRQ/UMQ snapshots after every one of the 10,000 steps.
#[test]
fn typed_engines_conform_with_snapshots() {
    let ops = engine_ops(SEED.wrapping_add(200), N_OPS);
    let mut baseline: MatchEngine<BaselineList<PostedEntry>, BaselineList<UnexpectedEntry>> =
        MatchEngine::new(BaselineList::new(), BaselineList::new());
    diff_engine(&mut baseline, DepthMode::Exact, &ops)
        .unwrap_or_else(|e| panic!("baseline engine: {e}"));

    let ops = engine_ops(SEED.wrapping_add(201), N_OPS);
    let mut lla: MatchEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> =
        MatchEngine::new(Lla::new(), Lla::new());
    diff_engine(&mut lla, DepthMode::Exact, &ops).unwrap_or_else(|e| panic!("LLA-2 engine: {e}"));

    let ops = engine_ops(SEED.wrapping_add(202), N_OPS);
    let mut bins: MatchEngine<SourceBins<PostedEntry>, SourceBins<UnexpectedEntry>> =
        MatchEngine::new(
            SourceBins::new(spc_conformance::ops::RANKS as usize),
            SourceBins::new(spc_conformance::ops::RANKS as usize),
        );
    diff_engine(&mut bins, DepthMode::Bounded, &ops)
        .unwrap_or_else(|e| panic!("source-bins engine: {e}"));

    let ops = engine_ops(SEED.wrapping_add(203), N_OPS);
    let mut hash: MatchEngine<HashBins<PostedEntry>, HashBins<UnexpectedEntry>> =
        MatchEngine::new(HashBins::with_bins(4), HashBins::with_bins(4));
    diff_engine(&mut hash, DepthMode::Bounded, &ops)
        .unwrap_or_else(|e| panic!("hash-bins engine: {e}"));

    let ops = engine_ops(SEED.wrapping_add(204), N_OPS);
    let mut trie: MatchEngine<RankTrie<PostedEntry>, RankTrie<UnexpectedEntry>> = MatchEngine::new(
        RankTrie::new(spc_conformance::ops::RANKS as usize),
        RankTrie::new(spc_conformance::ops::RANKS as usize),
    );
    diff_engine(&mut trie, DepthMode::Bounded, &ops)
        .unwrap_or_else(|e| panic!("rank-trie engine: {e}"));
}

fn mode_for(kind: &EngineKind) -> DepthMode {
    match kind {
        EngineKind::Baseline | EngineKind::Lla { .. } => DepthMode::Exact,
        _ => DepthMode::Bounded,
    }
}

/// Wildcard/mask arbitration under pressure: streams that keep several
/// `MPI_ANY_SOURCE`/`MPI_ANY_TAG` receives resident hammer exactly the
/// paths the partitioned structures (source bins, hash bins, rank trie)
/// handle specially — wildcard channels, bin merges, global scans.
#[test]
fn all_engine_kinds_conform_on_wildcard_bursts() {
    for (i, kind) in EngineKind::standard_set(spc_conformance::ops::RANKS as usize)
        .iter()
        .enumerate()
    {
        let mode = mode_for(kind);
        let ops = engine_ops_wild_bursts(SEED.wrapping_add(300 + i as u64), N_OPS);
        if let Err(e) = diff_dyn_engine(*kind, mode, &ops) {
            let min = shrink_ops(&ops, |s| diff_dyn_engine(*kind, mode, s).is_err());
            panic!(
                "{}: wildcard-burst divergence: {e}\nminimized repro ({} ops):\n{}",
                kind.label(),
                min.len(),
                render_ops("EngineOp", &min)
            );
        }
    }
}

fn check_sharded<P, U>(label: &str, mk: impl Fn() -> ShardedEngine<P, U>, seed: u64)
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    for (tag, ops) in [
        ("uniform", engine_ops(seed, N_OPS)),
        ("wild-burst", engine_ops_wild_bursts(seed ^ 0xAB, N_OPS)),
    ] {
        // Bounded depths: shard-local searches legitimately inspect fewer
        // entries than the oracle's single global queue.
        if let Err(e) = diff_engine(&mut mk(), DepthMode::Bounded, &ops) {
            let min: Vec<EngineOp> = shrink_ops(&ops, |s| {
                diff_engine(&mut mk(), DepthMode::Bounded, s).is_err()
            });
            panic!(
                "sharded {label} ({tag}): divergence: {e}\nminimized repro ({} ops):\n{}",
                min.len(),
                render_ops("EngineOp", &min)
            );
        }
    }
}

/// The sharded engine must be observationally identical to a single
/// global-FIFO engine when driven single-threaded — including its merged
/// queue snapshots after every step — for every structure family.
#[test]
fn sharded_engines_conform_in_lockstep() {
    const RANKS: usize = spc_conformance::ops::RANKS as usize;
    check_sharded(
        "baseline",
        || ShardedEngine::new(4, BaselineList::<PostedEntry>::new, BaselineList::new),
        SEED.wrapping_add(400),
    );
    check_sharded(
        "lla-2",
        || {
            ShardedEngine::new(
                4,
                Lla::<PostedEntry, 2>::new,
                Lla::<UnexpectedEntry, 3>::new,
            )
        },
        SEED.wrapping_add(401),
    );
    check_sharded(
        "source-bins",
        || ShardedEngine::new(4, || SourceBins::new(RANKS), || SourceBins::new(RANKS)),
        SEED.wrapping_add(402),
    );
    check_sharded(
        "hash-bins",
        || ShardedEngine::new(4, || HashBins::with_bins(4), || HashBins::with_bins(4)),
        SEED.wrapping_add(403),
    );
    check_sharded(
        "rank-trie",
        || ShardedEngine::new(4, || RankTrie::new(RANKS), || RankTrie::new(RANKS)),
        SEED.wrapping_add(404),
    );
    // Degenerate shard counts must behave identically too.
    check_sharded(
        "lla-2 x1-shard",
        || {
            ShardedEngine::new(
                1,
                Lla::<PostedEntry, 2>::new,
                Lla::<UnexpectedEntry, 3>::new,
            )
        },
        SEED.wrapping_add(405),
    );
    check_sharded(
        "lla-2 x13-shards",
        || {
            ShardedEngine::new(
                13,
                Lla::<PostedEntry, 2>::new,
                Lla::<UnexpectedEntry, 3>::new,
            )
        },
        SEED.wrapping_add(406),
    );
}
