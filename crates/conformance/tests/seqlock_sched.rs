//! Deterministic schedules for the sharded engine's lock-free read
//! paths.
//!
//! The free-running concurrent battery races these paths statistically;
//! this suite pins the op-boundary order with the interleaving scheduler
//! so every ordering that matters for the seqlock protocol is exercised
//! on every run:
//!
//! * a lock-free probe stepping between a writer's seq stamp and its
//!   snapshot commit (torn-snapshot window),
//! * a wildcard post's lock-free pre-scan racing a shard append,
//! * a probe against another producer's still-buffered ring entries.
//!
//! The harness-sensitivity half injects an adversary whose writers skip
//! the snapshot commit entirely ([`ShardedEngine::with_snap_commit_disabled`]):
//! its lock-free probes can never see queued messages, and the pinned
//! arrival-then-probe schedule convicts it deterministically. The
//! lockstep driver then shrinks the same bug to a paste-able handful of
//! ops.

use spc_conformance::concurrent::{verify_log, ConcOp};
use spc_conformance::ops::engine_ops;
use spc_conformance::{diff_engine, interleavings, render_ops, run_stepped, shrink_ops, DepthMode};
use spc_core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry};
use spc_core::ingest::BatchedEngine;
use spc_core::list::Lla;
use spc_core::shard::ShardedEngine;

type Sharded = ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>;
const SHARDS: usize = 4;

fn correct() -> Sharded {
    ShardedEngine::new(SHARDS, Lla::new, Lla::new)
}

fn adversary() -> Sharded {
    ShardedEngine::with_snap_commit_disabled(SHARDS, Lla::new, Lla::new)
}

/// Every interleaving of lock-free probes against a writer stream is a
/// valid linearization on the correct engine: a probe either retries out
/// of the torn-snapshot window or lands on a committed snapshot, and the
/// stamp it reports places it consistently against the arrivals.
#[test]
fn lock_free_probes_linearize_against_racing_writers_in_every_order() {
    let streams = vec![
        vec![
            ConcOp::Probe {
                rank: Some(2),
                tag: Some(2),
                ctx: 0,
            },
            ConcOp::Probe {
                rank: None,
                tag: None,
                ctx: 0,
            },
        ],
        vec![
            ConcOp::Arrive {
                rank: 2,
                tag: 2,
                ctx: 0,
            },
            ConcOp::Arrive {
                rank: 2,
                tag: 5,
                ctx: 0,
            },
        ],
    ];
    for schedule in interleavings(&[2, 2]) {
        let eng = correct();
        let log = run_stepped(&eng, &streams, &schedule);
        verify_log(&log, eng.queue_lens()).unwrap_or_else(|e| panic!("schedule {schedule:?}: {e}"));
    }
}

/// Every interleaving of a wildcard post (whose lock-free pre-scan reads
/// the published shard snapshots) against a shard append and a probe is
/// a valid linearization: the pre-scan either proves no queued message
/// matches (and parks) or falls back to the locked slow path.
#[test]
fn wildcard_prescan_linearizes_against_shard_appends_in_every_order() {
    let streams = vec![
        vec![ConcOp::Post {
            rank: None,
            tag: Some(3),
            ctx: 0,
        }],
        vec![
            ConcOp::Arrive {
                rank: 6,
                tag: 3,
                ctx: 0,
            },
            ConcOp::Probe {
                rank: Some(6),
                tag: Some(3),
                ctx: 0,
            },
        ],
    ];
    for schedule in interleavings(&[1, 2]) {
        let eng = correct();
        let log = run_stepped(&eng, &streams, &schedule);
        verify_log(&log, eng.queue_lens()).unwrap_or_else(|e| panic!("schedule {schedule:?}: {e}"));
    }
}

/// Probe-vs-ring-flush, pinned: a probe flushes the probing producer's
/// own rings (program order) but deliberately not another producer's —
/// entries buffered there have not linearized and stay invisible until
/// their owner flushes.
#[test]
fn probe_flushes_own_ring_and_ignores_unflushed_peers_deterministically() {
    let eng = BatchedEngine::<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>::new(
        SHARDS,
        2,
        64,
        Lla::new,
        Lla::new,
    );
    let spec = RecvSpec::new(3, 9, 0);
    // Producer 0 buffers an arrival; producer 1's probe must not see it.
    eng.producer(0).arrival(Envelope::new(3, 9, 0), 77);
    assert_eq!(eng.producer(1).iprobe_seq(spec).1, None);
    assert_eq!(eng.pending(), 1, "peer probe must not drain the ring");
    // The owner's own probe is ordered after its buffered arrival.
    assert_eq!(eng.producer(0).iprobe_seq(spec).1, Some((77, 1)));
    assert_eq!(eng.pending(), 0);
    // Once linearized, the message is visible to every producer.
    assert_eq!(eng.producer(1).iprobe_seq(spec).1, Some((77, 1)));
}

/// The injected adversary — writers skip the snapshot commit, so
/// lock-free probes never see queued messages — is convicted
/// *deterministically*: under the pinned arrival-then-probe schedule the
/// probe reports nothing while the oracle sees the queued message, on
/// every run. The probe-then-arrival order must pass even on the broken
/// engine (an empty engine legitimately probes empty).
#[test]
fn interleaving_scheduler_convicts_the_snap_commit_adversary() {
    let streams = vec![
        vec![ConcOp::Arrive {
            rank: 2,
            tag: 2,
            ctx: 0,
        }],
        vec![ConcOp::Probe {
            rank: Some(2),
            tag: Some(2),
            ctx: 0,
        }],
    ];
    let mut convictions = 0;
    for schedule in interleavings(&[1, 1]) {
        let eng = adversary();
        let log = run_stepped(&eng, &streams, &schedule);
        match verify_log(&log, eng.queue_lens()) {
            Ok(()) => {}
            Err(err) => {
                assert!(
                    err.contains("oracle"),
                    "conviction must be an oracle disagreement: {err}"
                );
                assert_eq!(
                    schedule,
                    vec![0, 1],
                    "only the arrival-first order exposes the skipped commit"
                );
                convictions += 1;
            }
        }
    }
    assert_eq!(
        convictions, 1,
        "the arrival-first schedule must convict on every run"
    );
}

/// The same bug, caught deterministically by the lockstep driver and
/// shrunk to a paste-able repro: queue one message, probe for it. The
/// adversary's lock-free probe reads only committed snapshot rows — of
/// which the skipped commit left none.
#[test]
fn snap_commit_adversary_is_shrunk_to_a_pasteable_repro() {
    let ops = engine_ops(0x5EC5_0CC5, 10_000);
    let err = diff_engine(&mut adversary(), DepthMode::Bounded, &ops)
        .expect_err("a mixed stream with probes must expose the skipped snapshot commit");
    assert!(
        err.detail.contains("iprobe"),
        "divergence should be a probe disagreement: {err}"
    );

    let fails = |s: &[spc_conformance::EngineOp]| {
        diff_engine(&mut adversary(), DepthMode::Bounded, s).is_err()
    };
    let min = shrink_ops(&ops, fails);
    assert!(fails(&min), "minimized stream must still fail");
    assert!(
        min.len() <= 4,
        "expected a near-minimal repro, got {} ops:\n{}",
        min.len(),
        render_ops("EngineOp", &min)
    );
    let repro = render_ops("EngineOp", &min);
    assert!(
        repro.contains("EngineOp::Iprobe"),
        "repro must involve a probe:\n{repro}"
    );
}

/// Harness sanity: the correct engine survives the conviction scenario
/// under every schedule, and the same lockstep stream that convicts the
/// adversary passes clean.
#[test]
fn correct_engine_passes_the_snap_commit_scenario() {
    let streams = vec![
        vec![ConcOp::Arrive {
            rank: 2,
            tag: 2,
            ctx: 0,
        }],
        vec![ConcOp::Probe {
            rank: Some(2),
            tag: Some(2),
            ctx: 0,
        }],
    ];
    for schedule in interleavings(&[1, 1]) {
        let eng = correct();
        let log = run_stepped(&eng, &streams, &schedule);
        verify_log(&log, eng.queue_lens()).unwrap_or_else(|e| panic!("schedule {schedule:?}: {e}"));
    }
    diff_engine(
        &mut correct(),
        DepthMode::Bounded,
        &engine_ops(0x5EC5_0CC5, 10_000),
    )
    .unwrap();
}
