//! Concurrent differential conformance: every list structure, behind both
//! thread-safe engines, survives racing op streams at 2/4/8 threads —
//! verified by replaying each run's seq-stamped linearization through the
//! Vec-backed oracle.
//!
//! Plus the harness-sensitivity half: the injected sharded-engine
//! adversary (wildcard epoch check disabled) is caught by the same
//! machinery, and the deterministic lockstep driver shrinks it to a
//! paste-able handful of ops.

use spc_conformance::concurrent::{conc_ops, run_and_verify, stress_multiplier, ConcEngine};
use spc_conformance::{diff_engine, engine_ops_wild_bursts, render_ops, shrink_ops, DepthMode};
use spc_core::concurrent::SharedEngine;
use spc_core::engine::MatchEngine;
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::{BaselineList, HashBins, Lla, MatchList, RankTrie, SourceBins};
use spc_core::shard::ShardedEngine;

const RANKS: usize = spc_conformance::ops::RANKS as usize;
const SHARDS: usize = 4;
const SEED: u64 = 0xC0C0_11C5;

/// ≥10,000 ops at every thread count (scaled up by `SPC_CONC_OPS_MULT`
/// in CI's stress job).
fn total_ops() -> usize {
    10_000 * stress_multiplier()
}

/// Runs a fresh engine from `mk` against racing streams at 2, 4 and 8
/// threads and verifies each linearization against the oracle.
fn check_conc<E: ConcEngine>(label: &str, mk: impl Fn() -> E, seed: u64) {
    for threads in [2usize, 4, 8] {
        let per_thread = total_ops().div_ceil(threads);
        let streams = conc_ops(seed ^ (threads as u64), threads, per_thread);
        let eng = mk();
        if let Err(e) = run_and_verify(&eng, &streams) {
            panic!("{label} @ {threads} threads: {e}");
        }
    }
}

/// Both engines over one structure family.
fn check_both<P, U>(
    label: &str,
    mk_p: impl Fn() -> P + Copy,
    mk_u: impl Fn() -> U + Copy,
    seed: u64,
) where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    check_conc(
        &format!("shared/{label}"),
        || SharedEngine::new(MatchEngine::new(mk_p(), mk_u())),
        seed,
    );
    check_conc(
        &format!("sharded/{label}"),
        || ShardedEngine::new(SHARDS, mk_p, mk_u),
        seed ^ 0x5A5A,
    );
}

#[test]
fn baseline_concurrent_conformance() {
    check_both(
        "baseline",
        BaselineList::<PostedEntry>::new,
        BaselineList::<UnexpectedEntry>::new,
        SEED,
    );
}

#[test]
fn lla_concurrent_conformance() {
    check_both(
        "lla-2",
        Lla::<PostedEntry, 2>::new,
        Lla::<UnexpectedEntry, 3>::new,
        SEED.wrapping_add(1),
    );
}

#[test]
fn source_bins_concurrent_conformance() {
    check_both(
        "source-bins",
        || SourceBins::new(RANKS),
        || SourceBins::new(RANKS),
        SEED.wrapping_add(2),
    );
}

#[test]
fn hash_bins_concurrent_conformance() {
    check_both(
        "hash-bins",
        || HashBins::with_bins(4),
        || HashBins::with_bins(4),
        SEED.wrapping_add(3),
    );
}

#[test]
fn rank_trie_concurrent_conformance() {
    check_both(
        "rank-trie",
        || RankTrie::new(RANKS),
        || RankTrie::new(RANKS),
        SEED.wrapping_add(4),
    );
}

fn adversary() -> ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> {
    ShardedEngine::with_wildcard_check_disabled(SHARDS, Lla::new, Lla::new)
}

/// The injected adversary — a sharded engine whose arrivals skip the
/// wildcard seq comparison — must be caught by the concurrent driver:
/// wildcard-heavy racing streams produce a linearization the oracle
/// rejects (a newer concrete receive overtook an older `MPI_ANY_SOURCE`
/// receive). Whether the race manifests in any single free-running run
/// depends on thread timing, so the test retries across seeds and
/// requires at least one conviction; each conviction must be an oracle
/// disagreement, never a harness error.
#[test]
fn concurrent_driver_catches_the_wildcard_adversary() {
    let mut caught = false;
    for attempt in 0..8u64 {
        let streams = conc_ops(SEED.wrapping_add(50 + attempt), 4, 2_500);
        if let Err(err) = run_and_verify(&adversary(), &streams) {
            assert!(
                err.contains("oracle"),
                "failure should be an oracle disagreement: {err}"
            );
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "the adversary must produce a non-linearizable history within 8 runs"
    );
}

/// The same bug, caught deterministically by the lockstep driver and
/// shrunk to a paste-able repro. The minimal shape is three ops: post a
/// wildcard receive, post a concrete receive, deliver a message both
/// match — the adversary hands it to the (newer) concrete receive.
#[test]
fn wildcard_adversary_is_shrunk_to_a_pasteable_repro() {
    let ops = engine_ops_wild_bursts(SEED.wrapping_add(51), 10_000);
    let err = diff_engine(&mut adversary(), DepthMode::Bounded, &ops)
        .expect_err("wildcard bursts must expose the disabled epoch check");
    assert!(
        err.detail.contains("matched"),
        "divergence should be a wrong-match disagreement: {err}"
    );

    let fails = |s: &[spc_conformance::EngineOp]| {
        diff_engine(&mut adversary(), DepthMode::Bounded, s).is_err()
    };
    let min = shrink_ops(&ops, fails);
    assert!(fails(&min), "minimized stream must still fail");
    assert!(
        min.len() <= 4,
        "expected a near-minimal repro, got {} ops:\n{}",
        min.len(),
        render_ops("EngineOp", &min)
    );
    let repro = render_ops("EngineOp", &min);
    assert!(repro.starts_with("let ops = vec![\n"), "{repro}");
    assert!(
        repro.contains("EngineOp::PostRecv { rank: None"),
        "repro must involve a wildcard receive:\n{repro}"
    );
}

/// Sanity check on the harness itself: the *correct* sharded engine
/// passes the exact stream that convicted the adversary.
#[test]
fn correct_sharded_engine_passes_the_adversary_stream() {
    let streams = conc_ops(SEED.wrapping_add(50), 4, 2_500);
    let eng: ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> =
        ShardedEngine::new(SHARDS, Lla::new, Lla::new);
    run_and_verify(&eng, &streams).unwrap();
}
