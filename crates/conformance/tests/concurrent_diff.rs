//! Concurrent differential conformance: every list structure, behind both
//! thread-safe engines, survives racing op streams at 2/4/8 threads —
//! verified by replaying each run's seq-stamped linearization through the
//! Vec-backed oracle.
//!
//! Plus the harness-sensitivity half: the injected sharded-engine
//! adversary (wildcard epoch check disabled) is caught by the same
//! machinery, and the deterministic lockstep driver shrinks it to a
//! paste-able handful of ops.

use spc_conformance::concurrent::{
    conc_ops, run_and_verify, run_and_verify_batched, stress_multiplier, ConcEngine, ConcOp,
};
use spc_conformance::{
    diff_engine, engine_ops_wild_bursts, interleavings, render_ops, run_stepped, shrink_ops,
    verify_log, DepthMode,
};
use spc_core::concurrent::SharedEngine;
use spc_core::engine::MatchEngine;
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::{BaselineList, HashBins, Lla, MatchList, RankTrie, SourceBins};
use spc_core::shard::ShardedEngine;

const RANKS: usize = spc_conformance::ops::RANKS as usize;
const SHARDS: usize = 4;
const SEED: u64 = 0xC0C0_11C5;

/// ≥10,000 ops at every thread count (scaled up by `SPC_CONC_OPS_MULT`
/// in CI's stress job).
fn total_ops() -> usize {
    10_000 * stress_multiplier()
}

/// Runs a fresh engine from `mk` against racing streams at 2, 4 and 8
/// threads and verifies each linearization against the oracle.
fn check_conc<E: ConcEngine>(label: &str, mk: impl Fn() -> E, seed: u64) {
    for threads in [2usize, 4, 8] {
        let per_thread = total_ops().div_ceil(threads);
        let streams = conc_ops(seed ^ (threads as u64), threads, per_thread);
        let eng = mk();
        if let Err(e) = run_and_verify(&eng, &streams) {
            panic!("{label} @ {threads} threads: {e}");
        }
    }
}

/// Races producer streams through a batched engine's ingest rings at 2,
/// 4 and 8 threads, verifying the merged direct-plus-drain-log
/// linearization against the oracle (exactly-once accounting of in-ring
/// entries included — see `run_concurrent_batched`).
fn check_batched<P, U>(
    label: &str,
    mk_p: impl Fn() -> P + Copy,
    mk_u: impl Fn() -> U + Copy,
    seed: u64,
) where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    const BATCH: usize = 16;
    for threads in [2usize, 4, 8] {
        let per_thread = total_ops().div_ceil(threads);
        let streams = conc_ops(seed ^ (threads as u64), threads, per_thread);
        if let Err(e) = run_and_verify_batched(&streams, SHARDS, BATCH, mk_p, mk_u) {
            panic!("batched/{label} @ {threads} threads: {e}");
        }
    }
}

/// All three engines over one structure family.
fn check_both<P, U>(
    label: &str,
    mk_p: impl Fn() -> P + Copy,
    mk_u: impl Fn() -> U + Copy,
    seed: u64,
) where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    check_conc(
        &format!("shared/{label}"),
        || SharedEngine::new(MatchEngine::new(mk_p(), mk_u())),
        seed,
    );
    check_conc(
        &format!("sharded/{label}"),
        || ShardedEngine::new(SHARDS, mk_p, mk_u),
        seed ^ 0x5A5A,
    );
    check_batched(label, mk_p, mk_u, seed ^ 0xB47C);
}

#[test]
fn baseline_concurrent_conformance() {
    check_both(
        "baseline",
        BaselineList::<PostedEntry>::new,
        BaselineList::<UnexpectedEntry>::new,
        SEED,
    );
}

#[test]
fn lla_concurrent_conformance() {
    check_both(
        "lla-2",
        Lla::<PostedEntry, 2>::new,
        Lla::<UnexpectedEntry, 3>::new,
        SEED.wrapping_add(1),
    );
}

#[test]
fn source_bins_concurrent_conformance() {
    check_both(
        "source-bins",
        || SourceBins::new(RANKS),
        || SourceBins::new(RANKS),
        SEED.wrapping_add(2),
    );
}

#[test]
fn hash_bins_concurrent_conformance() {
    check_both(
        "hash-bins",
        || HashBins::with_bins(4),
        || HashBins::with_bins(4),
        SEED.wrapping_add(3),
    );
}

#[test]
fn rank_trie_concurrent_conformance() {
    check_both(
        "rank-trie",
        || RankTrie::new(RANKS),
        || RankTrie::new(RANKS),
        SEED.wrapping_add(4),
    );
}

/// Entries still sitting in the ingest rings when the producer threads
/// join are neither lost nor double-applied: the accounting sees them in
/// flight, the final flush linearizes each exactly once, and the drain
/// log covers all of them.
#[test]
fn entries_in_flight_at_join_are_accounted_exactly_once() {
    use spc_core::entry::{Envelope, RecvSpec};
    use spc_core::ingest::{BatchedEngine, IngestOp};

    let eng = BatchedEngine::<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>::new(
        SHARDS,
        2,
        64,
        Lla::new,
        Lla::new,
    )
    .with_drain_log();
    std::thread::scope(|s| {
        for t in 0..2usize {
            let eng = &eng;
            s.spawn(move || {
                let p = eng.producer(t);
                for i in 0..5u64 {
                    let id = ((t as u64) << 32) | i;
                    p.post_recv(RecvSpec::new((i % 3) as i32, i as i32, 0), id);
                    p.arrival(Envelope::new((i % 3) as i32, i as i32, 0), id | 1 << 16);
                }
            });
        }
    });
    // Far fewer ops than the 64-slot batch and no probes: every op is
    // still in flight at the join.
    assert_eq!(eng.pending(), 20, "all ops should still be buffered");
    assert_eq!((eng.enqueued(), eng.drained()), (20, 0));
    assert_eq!(eng.queue_lens(), (0, 0), "nothing linearized yet");
    assert_eq!(eng.flush_all(), 20);
    assert_eq!((eng.pending(), eng.enqueued(), eng.drained()), (0, 20, 20));

    let log = eng.take_drain_log();
    assert_eq!(log.len(), 20, "drain log must cover every buffered op");
    let mut posts = std::collections::HashSet::new();
    let mut arrivals = std::collections::HashSet::new();
    for r in &log {
        match r.op {
            IngestOp::Post { request, .. } => assert!(posts.insert(request)),
            IngestOp::Arrive { payload, .. } => assert!(arrivals.insert(payload)),
        }
    }
    assert_eq!((posts.len(), arrivals.len()), (10, 10));
    // Per-producer FIFO drain: each arrival finds the post buffered
    // before it, so the queues fully pair off.
    assert_eq!(eng.queue_lens(), (0, 0));
    assert_eq!(eng.stats().prq_hits, 10);
    #[cfg(feature = "debug_invariants")]
    eng.validate().unwrap();
}

fn adversary() -> ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> {
    ShardedEngine::with_wildcard_check_disabled(SHARDS, Lla::new, Lla::new)
}

/// The two-thread scenario whose ordering decides the wildcard race:
/// thread 0 posts an `MPI_ANY_SOURCE`/`MPI_ANY_TAG` receive; thread 1
/// posts a concrete receive and then delivers a message matching both.
fn wildcard_race_streams() -> Vec<Vec<ConcOp>> {
    vec![
        vec![ConcOp::Post {
            rank: None,
            tag: None,
            ctx: 0,
        }],
        vec![
            ConcOp::Post {
                rank: Some(6),
                tag: Some(3),
                ctx: 0,
            },
            ConcOp::Arrive {
                rank: 6,
                tag: 3,
                ctx: 0,
            },
        ],
    ]
}

/// The injected adversary — a sharded engine whose arrivals skip the
/// wildcard seq comparison — is convicted *deterministically* by the
/// interleaving scheduler: pin the op order so the wildcard receive
/// linearizes before the concrete one, and the adversary's arrival hands
/// the message to the newer concrete receive, a linearization the oracle
/// rejects on every run (no free-running race to hope for, no retries).
/// The scenario's other interleavings are exercised too: when the
/// concrete receive is older, matching it shard-locally is correct, so
/// those orders must pass even on the broken engine.
#[test]
fn interleaving_scheduler_convicts_the_wildcard_adversary() {
    let streams = wildcard_race_streams();
    let mut convictions = 0;
    for schedule in interleavings(&[1, 2]) {
        let eng = adversary();
        let log = run_stepped(&eng, &streams, &schedule);
        match verify_log(&log, eng.queue_lens()) {
            Ok(()) => {}
            Err(err) => {
                assert!(
                    err.contains("oracle"),
                    "conviction must be an oracle disagreement: {err}"
                );
                assert_eq!(
                    schedule,
                    vec![0, 1, 1],
                    "only the wildcard-first order exposes the skipped check"
                );
                convictions += 1;
            }
        }
    }
    assert_eq!(
        convictions, 1,
        "the wildcard-first schedule must convict on every run"
    );
}

/// The same bug, caught deterministically by the lockstep driver and
/// shrunk to a paste-able repro. The minimal shape is three ops: post a
/// wildcard receive, post a concrete receive, deliver a message both
/// match — the adversary hands it to the (newer) concrete receive.
#[test]
fn wildcard_adversary_is_shrunk_to_a_pasteable_repro() {
    let ops = engine_ops_wild_bursts(SEED.wrapping_add(51), 10_000);
    let err = diff_engine(&mut adversary(), DepthMode::Bounded, &ops)
        .expect_err("wildcard bursts must expose the disabled epoch check");
    assert!(
        err.detail.contains("matched"),
        "divergence should be a wrong-match disagreement: {err}"
    );

    let fails = |s: &[spc_conformance::EngineOp]| {
        diff_engine(&mut adversary(), DepthMode::Bounded, s).is_err()
    };
    let min = shrink_ops(&ops, fails);
    assert!(fails(&min), "minimized stream must still fail");
    assert!(
        min.len() <= 4,
        "expected a near-minimal repro, got {} ops:\n{}",
        min.len(),
        render_ops("EngineOp", &min)
    );
    let repro = render_ops("EngineOp", &min);
    assert!(repro.starts_with("let ops = vec![\n"), "{repro}");
    assert!(
        repro.contains("EngineOp::PostRecv { rank: None"),
        "repro must involve a wildcard receive:\n{repro}"
    );
}

/// Sanity check on the harness itself: the *correct* sharded engine
/// passes every interleaving of the conviction scenario (the wildcard
/// seq comparison resolves the race the way the oracle demands) and a
/// free-running wildcard-heavy stream.
#[test]
fn correct_sharded_engine_passes_the_adversary_scenario() {
    let mk = || -> ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> {
        ShardedEngine::new(SHARDS, Lla::new, Lla::new)
    };
    let streams = wildcard_race_streams();
    for schedule in interleavings(&[1, 2]) {
        let eng = mk();
        let log = run_stepped(&eng, &streams, &schedule);
        verify_log(&log, eng.queue_lens()).unwrap_or_else(|e| panic!("schedule {schedule:?}: {e}"));
    }
    run_and_verify(&mk(), &conc_ops(SEED.wrapping_add(50), 4, 2_500)).unwrap();
}
