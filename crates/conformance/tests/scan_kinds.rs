//! Oracle conformance under every forced scan kind.
//!
//! The SIMD slab kernels (`spc_core::simd`) claim bit-for-bit equivalence
//! with the scalar packed scan; `tests/simd_props.rs` in `spc-core` pins
//! that at the kernel and trace level. This binary closes the loop at the
//! *semantic* level: the full randomized op streams replayed against the
//! Vec-backed oracle, with the process-global scan kind forced to each
//! supported kernel in turn — so a kind-dependent divergence in match
//! identity, FIFO arbitration, or depth accounting fails conformance, not
//! just a unit test.
//!
//! Everything lives in ONE test function because the scan kind is
//! process-global (mirroring the prefetch-distance convention): sibling
//! tests in this binary would race the override.

use spc_conformance::{
    diff_posted, diff_umq, posted_ops, render_ops, shrink_ops, umq_ops, DepthMode,
};
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::{BaselineList, Lla, MatchList};
use spc_core::simd::{self, ScanKind};

const N_OPS: usize = 10_000;
const SEED: u64 = 0x5EED_51D0;

fn check_posted<L: MatchList<PostedEntry>>(
    label: &str,
    kind: ScanKind,
    mk: impl Fn() -> L,
    seed: u64,
) {
    let ops = posted_ops(seed, N_OPS);
    if let Err(e) = diff_posted(&mut mk(), DepthMode::Exact, &ops) {
        let min = shrink_ops(&ops, |s| {
            diff_posted(&mut mk(), DepthMode::Exact, s).is_err()
        });
        panic!(
            "{label} under {kind:?}: conformance divergence: {e}\nminimized repro ({} ops):\n{}",
            min.len(),
            render_ops("PostedOp", &min)
        );
    }
}

fn check_umq<L: MatchList<UnexpectedEntry>>(
    label: &str,
    kind: ScanKind,
    mk: impl Fn() -> L,
    seed: u64,
) {
    let ops = umq_ops(seed, N_OPS);
    if let Err(e) = diff_umq(&mut mk(), DepthMode::Exact, &ops) {
        let min = shrink_ops(&ops, |s| diff_umq(&mut mk(), DepthMode::Exact, s).is_err());
        panic!(
            "{label} under {kind:?}: conformance divergence: {e}\nminimized repro ({} ops):\n{}",
            min.len(),
            render_ops("UmqOp", &min)
        );
    }
}

#[test]
fn every_scan_kind_conforms_to_the_oracle() {
    let orig = simd::scan_kind();
    let best = simd::detect_best();
    for (i, kind) in ScanKind::ALL.into_iter().filter(|k| *k <= best).enumerate() {
        assert_eq!(simd::set_scan_kind(kind), kind);
        let seed = SEED.wrapping_add(1000 * i as u64);
        // Baseline's batched gather walk, the LLA bitmap scan at cacheline
        // and deep arities, the full-width 32-slot bitmap, and the
        // windowed large-arity fallback.
        check_posted("baseline", kind, BaselineList::<PostedEntry>::new, seed);
        check_umq(
            "baseline",
            kind,
            BaselineList::<UnexpectedEntry>::new,
            seed ^ 1,
        );
        check_posted("lla-2", kind, Lla::<PostedEntry, 2>::new, seed + 2);
        check_umq("lla-3", kind, Lla::<UnexpectedEntry, 3>::new, seed + 3);
        check_posted("lla-8", kind, Lla::<PostedEntry, 8>::new, seed + 8);
        check_posted("lla-32", kind, Lla::<PostedEntry, 32>::new, seed + 32);
        check_posted("lla-512", kind, Lla::<PostedEntry, 512>::new, seed + 512);
        check_umq(
            "lla-768",
            kind,
            Lla::<UnexpectedEntry, 768>::new,
            seed + 513,
        );
    }
    simd::set_scan_kind(orig);
}
