//! Deterministic-interleaving race tests: the hard concurrent scenarios,
//! pushed through **every** possible op interleaving by the channel-gated
//! step scheduler, each interleaving's seq-stamped log replayed through
//! the oracle.
//!
//! Free-running stress visits interleavings by luck; these tests visit
//! all of them. Each scenario is ≤6 steps so exhaustive enumeration stays
//! small (20–90 schedules), and every schedule runs against a fresh
//! engine. The final test proves the machinery has teeth: the injected
//! wildcard adversary fails at least one interleaving of a three-step
//! scenario — and exactly the interleavings where the wildcard is
//! resident before the race.

use spc_conformance::concurrent::{verify_log, ConcOp};
use spc_conformance::sched::{interleavings, run_stepped, sampled_schedules};
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::{BaselineList, Lla, MatchList};
use spc_core::shard::ShardedEngine;

type LlaSharded = ShardedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>>;

fn lla_engine() -> LlaSharded {
    ShardedEngine::new(4, Lla::new, Lla::new)
}

fn post(rank: Option<i32>, tag: Option<i32>) -> ConcOp {
    ConcOp::Post { rank, tag, ctx: 0 }
}

fn arrive(rank: i32, tag: i32) -> ConcOp {
    ConcOp::Arrive { rank, tag, ctx: 0 }
}

fn probe(rank: Option<i32>, tag: Option<i32>) -> ConcOp {
    ConcOp::Probe { rank, tag, ctx: 0 }
}

/// Every interleaving of `streams` against a fresh engine from `mk` must
/// produce an oracle-approved linearization.
fn exhaust<P, U>(scenario: &str, mk: impl Fn() -> ShardedEngine<P, U>, streams: &[Vec<ConcOp>])
where
    P: MatchList<PostedEntry> + Send,
    U: MatchList<UnexpectedEntry> + Send,
{
    let counts: Vec<usize> = streams.iter().map(Vec::len).collect();
    let schedules = interleavings(&counts);
    assert!(schedules.len() > 1, "scenario must actually race");
    for sched in &schedules {
        let eng = mk();
        let log = run_stepped(&eng, streams, sched);
        verify_log(&log, eng.queue_lens())
            .unwrap_or_else(|e| panic!("{scenario}, schedule {sched:?}: {e}"));
    }
}

/// Race 1: wildcard receives vs arrivals racing on two different shards.
/// Whatever the order, each wildcard must take the globally oldest
/// matching message, and queued messages must pair off later exactly
/// once. Ranks 0 and 1 land on different shards of the 4-shard engine.
#[test]
fn wildcard_post_races_arrivals_on_two_shards() {
    let streams = vec![
        vec![post(None, None), post(None, None)],
        vec![arrive(0, 1), arrive(0, 2)],
        vec![arrive(1, 1), arrive(1, 2)],
    ];
    exhaust("wild-vs-two-shards (lla)", lla_engine, &streams); // 90 schedules
    exhaust(
        "wild-vs-two-shards (baseline)",
        || ShardedEngine::new(4, BaselineList::<PostedEntry>::new, BaselineList::new),
        &streams,
    );
}

/// Race 2: cancel vs a concurrent match. The cancel and the two arrivals
/// race for one posted receive; in every order the outcome set must be
/// consistent (cancel hits XOR an arrival matches, never both, never
/// neither when an arrival came first).
#[test]
fn cancel_races_a_concurrent_match() {
    let streams = vec![
        vec![post(Some(2), Some(1)), ConcOp::Cancel { nth: 0 }],
        vec![arrive(2, 1), arrive(2, 1)],
    ];
    exhaust("cancel-vs-match", lla_engine, &streams); // 6 schedules
                                                      // A wildcard receive being cancelled exercises the wild lane's
                                                      // cancel path against arrivals crossing into the lane.
    let streams = vec![
        vec![post(None, Some(1)), ConcOp::Cancel { nth: 0 }],
        vec![arrive(3, 1), arrive(7, 1)],
    ];
    exhaust("cancel-wild-vs-match", lla_engine, &streams);
}

/// Race 3: probe vs a draining queue. The probe races an unexpected
/// message being consumed by its receive; every order must report a
/// probe result consistent with its linearization point (message seen
/// before the drain, not after).
#[test]
fn probe_races_a_draining_queue() {
    let streams = vec![
        vec![arrive(3, 1), post(Some(3), Some(1))],
        vec![probe(None, None), probe(Some(3), Some(1))],
    ];
    exhaust("probe-vs-drain", lla_engine, &streams); // 6 schedules
}

/// Beyond-exhaustive sanity: a larger three-thread scenario driven by a
/// seeded sample of schedules (the exhaustive count would be 9!/(3!3!3!)
/// = 1680).
#[test]
fn sampled_schedules_cover_a_larger_scenario() {
    let streams = vec![
        vec![
            post(None, None),
            post(Some(1), Some(1)),
            ConcOp::Cancel { nth: 1 },
        ],
        vec![arrive(1, 1), arrive(5, 2), probe(None, None)],
        vec![post(None, Some(2)), arrive(1, 1), arrive(5, 2)],
    ];
    let counts: Vec<usize> = streams.iter().map(Vec::len).collect();
    for sched in sampled_schedules(&counts, 64, 0xD1CE) {
        let eng = lla_engine();
        let log = run_stepped(&eng, &streams, &sched);
        verify_log(&log, eng.queue_lens())
            .unwrap_or_else(|e| panic!("sampled schedule {sched:?}: {e}"));
    }
}

/// Harness sensitivity: the adversary (wildcard epoch check disabled)
/// must fail at least one interleaving of the minimal race — and the
/// correct engine must pass all of them. The adversary misbehaves in
/// exactly the schedules that make the wildcard resident before the
/// concrete receive and its arrival (rank 6, shard 2 ≠ wild lane).
#[test]
fn adversary_fails_an_interleaving_the_correct_engine_survives() {
    let streams = vec![
        vec![post(None, None), post(Some(6), Some(3))],
        vec![arrive(6, 3)],
    ];
    let counts: Vec<usize> = streams.iter().map(Vec::len).collect();
    let schedules = interleavings(&counts);
    assert_eq!(schedules.len(), 3);

    let mut adversary_failures = Vec::new();
    for sched in &schedules {
        let good = lla_engine();
        let log = run_stepped(&good, &streams, sched);
        verify_log(&log, good.queue_lens())
            .unwrap_or_else(|e| panic!("correct engine, schedule {sched:?}: {e}"));

        let bad: LlaSharded = ShardedEngine::with_wildcard_check_disabled(4, Lla::new, Lla::new);
        let log = run_stepped(&bad, &streams, sched);
        if verify_log(&log, bad.queue_lens()).is_err() {
            adversary_failures.push(sched.clone());
        }
    }
    // Only wild-post → concrete-post → arrival makes both receives
    // resident when the message lands; that is where the skipped epoch
    // check shows.
    assert_eq!(
        adversary_failures,
        vec![vec![0, 0, 1]],
        "the adversary must fail exactly the wildcard-resident schedule"
    );
}
