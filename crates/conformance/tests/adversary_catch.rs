//! Harness-sensitivity tests: a deliberately-injected FIFO violation must
//! be caught by the differential driver and reduced by the shrinker to a
//! minimal repro.
//!
//! This is the proof that the conformance run in `differential.rs` means
//! something: the same driver, fed a structure with the classic
//! non-overtaking bug, fails — and fails *usefully*.

use spc_conformance::{
    diff_engine, diff_posted, posted_ops, render_ops, shrink_ops, DepthMode, FifoViolator, PostedOp,
};
use spc_core::engine::MatchEngine;
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::BaselineList;

fn violator() -> FifoViolator<BaselineList<PostedEntry>> {
    FifoViolator::new(BaselineList::new())
}

/// Full pipeline: 10,000 randomized ops catch the injected violation,
/// and shrinking reduces the stream to a handful of ops that still fail.
#[test]
fn injected_fifo_violation_is_caught_and_minimized() {
    let ops = posted_ops(0xBAD_F1F0, 10_000);
    let err = diff_posted(&mut violator(), DepthMode::Bounded, &ops)
        .expect_err("the randomized stream must expose the FIFO violation");
    assert!(
        err.detail.contains("matched") || err.detail.contains("snapshot"),
        "divergence should be a match/snapshot disagreement, got: {err}"
    );

    let min = shrink_ops(&ops, |s| {
        diff_posted(&mut violator(), DepthMode::Bounded, s).is_err()
    });
    assert!(
        diff_posted(&mut violator(), DepthMode::Bounded, &min).is_err(),
        "minimized stream must still fail"
    );
    // The theoretical minimum is two overlapping appends plus the search
    // that resolves them; 1-minimality should land at (or very near) it.
    assert!(
        min.len() <= 5,
        "expected a near-minimal repro, got {} ops:\n{}",
        min.len(),
        render_ops("PostedOp", &min)
    );
    assert!(
        min.iter()
            .filter(|o| matches!(o, PostedOp::Append { .. }))
            .count()
            >= 2,
        "a FIFO violation needs at least two overlapping appends"
    );

    // The repro renders as paste-able constructor syntax.
    let repro = render_ops("PostedOp", &min);
    assert!(repro.starts_with("let ops = vec![\n"), "{repro}");
    assert!(repro.contains("PostedOp::"), "{repro}");
}

/// Hand-written minimal violation: the exact stream the shrinker should
/// converge towards. Keeps the expected failure shape pinned down.
#[test]
fn minimal_hand_written_violation_fails() {
    let ops = vec![
        PostedOp::Append {
            rank: Some(1),
            tag: Some(1),
            ctx: 0,
        },
        PostedOp::Append {
            rank: Some(1),
            tag: Some(1),
            ctx: 0,
        },
        PostedOp::Search {
            rank: 1,
            tag: 1,
            ctx: 0,
        },
    ];
    let err = diff_posted(&mut violator(), DepthMode::Bounded, &ops).unwrap_err();
    assert_eq!(err.step, 2, "the search is where the overtaking shows");
}

/// The violation is also visible through a whole engine: a PRQ that
/// overtakes breaks arrival outcomes.
#[test]
fn engine_level_violation_is_caught() {
    use spc_conformance::{engine_ops, EngineOp};
    let ops = engine_ops(0xBAD_F1F1, 10_000);
    let mut engine: MatchEngine<
        FifoViolator<BaselineList<PostedEntry>>,
        BaselineList<UnexpectedEntry>,
    > = MatchEngine::new(FifoViolator::new(BaselineList::new()), BaselineList::new());
    let err = diff_engine(&mut engine, DepthMode::Bounded, &ops)
        .expect_err("engine-level stream must expose the PRQ violation");

    let fails = |s: &[EngineOp]| {
        let mut e: MatchEngine<
            FifoViolator<BaselineList<PostedEntry>>,
            BaselineList<UnexpectedEntry>,
        > = MatchEngine::new(FifoViolator::new(BaselineList::new()), BaselineList::new());
        diff_engine(&mut e, DepthMode::Bounded, s).is_err()
    };
    let min = shrink_ops(&ops, fails);
    assert!(
        fails(&min) && min.len() <= 6,
        "repro ({} ops) after: {err}",
        min.len()
    );
}
