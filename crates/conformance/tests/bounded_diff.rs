//! Bounded-admission differential conformance: every structure behind
//! `MatchEngine`'s capped `try_*` path agrees with the oracle engine
//! built with the same `QueueBounds` — same matches, same rejections,
//! same rejection counters — over long generated streams with caps small
//! enough that backpressure actually engages.
//!
//! Plus harness-sensitivity checks: an engine whose admission check is
//! off by one, and one that under-reports its rejection counters, are
//! both convicted.

use spc_conformance::{diff_engine_bounded, engine_ops, BoundedConformEngine, DepthMode};
use spc_core::engine::{MatchEngine, QueueBounds, TryArrivalOutcome, TryRecvOutcome};
use spc_core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry};
use spc_core::list::{BaselineList, HashBins, Lla, MatchList, SourceBins};

const RANKS: usize = spc_conformance::ops::RANKS as usize;
const SEED: u64 = 0xB0B0_CA9E;
/// ≥10,000 ops per structure, per the bounded-conformance gate.
const OPS: usize = 12_000;

fn caps() -> QueueBounds {
    // Small enough that the generator's burst phases overflow both
    // queues many times over the stream.
    QueueBounds {
        max_prq: 12,
        max_umq: 12,
    }
}

fn check_bounded<P, U>(label: &str, prq: P, umq: U, mode: DepthMode)
where
    P: MatchList<PostedEntry>,
    U: MatchList<UnexpectedEntry>,
{
    let mut subject = MatchEngine::with_bounds(prq, umq, caps());
    let stream = engine_ops(SEED, OPS);
    match diff_engine_bounded(&mut subject, caps(), mode, &stream) {
        Ok(rejected) => assert!(
            rejected > 0,
            "{label}: caps of 12 over {OPS} ops must actually reject"
        ),
        Err(e) => panic!("{label}: {e}"),
    }
}

#[test]
fn bounded_baseline_matches_oracle_exactly() {
    check_bounded(
        "baseline",
        BaselineList::<PostedEntry>::new(),
        BaselineList::<UnexpectedEntry>::new(),
        DepthMode::Exact,
    );
}

#[test]
fn bounded_lla_matches_oracle_exactly() {
    check_bounded(
        "lla",
        Lla::<PostedEntry, 2>::new(),
        Lla::<UnexpectedEntry, 3>::new(),
        DepthMode::Exact,
    );
}

#[test]
fn bounded_source_bins_match_oracle() {
    check_bounded(
        "source-bins",
        SourceBins::new(RANKS),
        SourceBins::new(RANKS),
        DepthMode::Bounded,
    );
}

#[test]
fn bounded_hash_bins_match_oracle() {
    check_bounded(
        "hash-bins",
        HashBins::with_bins(4),
        HashBins::with_bins(4),
        DepthMode::Bounded,
    );
}

/// Harness sensitivity: an engine configured with caps one higher than
/// the contract admits a 13th entry where the oracle rejects — the
/// driver must report the outcome disagreement (or the length skew it
/// causes), never pass.
#[test]
fn off_by_one_admission_is_convicted() {
    let mut sloppy = MatchEngine::with_bounds(
        BaselineList::<PostedEntry>::new(),
        BaselineList::<UnexpectedEntry>::new(),
        QueueBounds {
            max_prq: 13,
            max_umq: 13,
        },
    );
    let err = diff_engine_bounded(
        &mut sloppy,
        caps(),
        DepthMode::Exact,
        &engine_ops(SEED, OPS),
    )
    .expect_err("an off-by-one admission policy must diverge");
    assert!(
        err.detail.contains("outcome") || err.detail.contains("lens"),
        "expected an outcome/length disagreement: {err}"
    );
}

/// A wrapper that performs admission correctly but reports zeroed
/// rejection counters, modeling stats drift.
struct SilentRejections<E>(E);

impl<E: BoundedConformEngine> BoundedConformEngine for SilentRejections<E> {
    fn try_post_recv(&mut self, spec: RecvSpec, request: u64) -> TryRecvOutcome {
        self.0.try_post_recv(spec, request)
    }
    fn try_arrival(&mut self, env: Envelope, payload: u64) -> TryArrivalOutcome {
        self.0.try_arrival(env, payload)
    }
    fn iprobe(&mut self, spec: RecvSpec) -> Option<(u64, u32)> {
        self.0.iprobe(spec)
    }
    fn cancel_recv(&mut self, request: u64) -> bool {
        self.0.cancel_recv(request)
    }
    fn prq_len(&self) -> usize {
        self.0.prq_len()
    }
    fn umq_len(&self) -> usize {
        self.0.umq_len()
    }
    fn reset(&mut self) {
        self.0.reset()
    }
    fn rejections(&self) -> (u64, u64) {
        (0, 0)
    }
    fn queue_ids(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        self.0.queue_ids()
    }
    fn validate(&self) -> Result<(), String> {
        self.0.validate()
    }
}

/// Harness sensitivity: correct admission with under-reported counters
/// is convicted by the counter comparison.
#[test]
fn under_reported_rejection_counters_are_convicted() {
    let mut lying = SilentRejections(MatchEngine::with_bounds(
        BaselineList::<PostedEntry>::new(),
        BaselineList::<UnexpectedEntry>::new(),
        caps(),
    ));
    let err = diff_engine_bounded(&mut lying, caps(), DepthMode::Exact, &engine_ops(SEED, OPS))
        .expect_err("zeroed rejection counters must diverge");
    assert!(
        err.detail.contains("rejection counters"),
        "expected a counter disagreement: {err}"
    );
}
