//! Oracle conformance under every forced prefetch scheme.
//!
//! Software prefetch (`spc_core::prefetch`) is documented as a pure hint:
//! whichever [`PrefetchScheme`] a traversal runs under — no prefetch,
//! stride guesses, the dependent pointer chase, or the adaptive controller
//! that re-decides its lookahead mid-stream — the walk must stay
//! byte-for-byte sink-equivalent and return identical matches. This binary
//! pins that claim at the semantic level: full randomized op streams
//! replayed against the Vec-backed oracle with the process-global scheme
//! forced to each value in turn, so a scheme-dependent divergence in match
//! identity, FIFO arbitration, or depth accounting fails conformance, not
//! just a unit test. The adaptive scheme is the interesting case — its
//! controller mutates per-list state during the walk — and these streams
//! run long enough (10k ops) to cross many [`ADAPTIVE_EPOCH`] boundaries.
//!
//! Everything lives in ONE test function because the scheme is
//! process-global (mirroring `scan_kinds.rs`): sibling tests in this
//! binary would race the override.

use spc_conformance::{
    diff_posted, diff_umq, posted_ops, render_ops, shrink_ops, umq_ops, DepthMode,
};
use spc_core::entry::{PostedEntry, UnexpectedEntry};
use spc_core::list::{BaselineList, Lla, MatchList};
use spc_core::prefetch::{self, PrefetchScheme};

const N_OPS: usize = 10_000;
const SEED: u64 = 0x5EED_FE7C;

fn check_posted<L: MatchList<PostedEntry>>(
    label: &str,
    scheme: PrefetchScheme,
    mk: impl Fn() -> L,
    seed: u64,
) {
    let ops = posted_ops(seed, N_OPS);
    if let Err(e) = diff_posted(&mut mk(), DepthMode::Exact, &ops) {
        let min = shrink_ops(&ops, |s| {
            diff_posted(&mut mk(), DepthMode::Exact, s).is_err()
        });
        panic!(
            "{label} under {scheme:?}: conformance divergence: {e}\nminimized repro ({} ops):\n{}",
            min.len(),
            render_ops("PostedOp", &min)
        );
    }
}

fn check_umq<L: MatchList<UnexpectedEntry>>(
    label: &str,
    scheme: PrefetchScheme,
    mk: impl Fn() -> L,
    seed: u64,
) {
    let ops = umq_ops(seed, N_OPS);
    if let Err(e) = diff_umq(&mut mk(), DepthMode::Exact, &ops) {
        let min = shrink_ops(&ops, |s| diff_umq(&mut mk(), DepthMode::Exact, s).is_err());
        panic!(
            "{label} under {scheme:?}: conformance divergence: {e}\nminimized repro ({} ops):\n{}",
            min.len(),
            render_ops("UmqOp", &min)
        );
    }
}

#[test]
fn every_prefetch_scheme_conforms_to_the_oracle() {
    let orig = prefetch::scheme();
    for (i, scheme) in PrefetchScheme::ALL.into_iter().enumerate() {
        assert_eq!(prefetch::set_scheme(scheme), scheme);
        let seed = SEED.wrapping_add(1000 * i as u64);
        // The pointer-chasing structures take both the scalar and (where the
        // CPU supports it) batched walks through the chase/stride blocks;
        // arities straddle ADAPTIVE_CHASE_MAX_ARITY so the adaptive arity
        // gate's on- and off-paths are both exercised, and the large-arity
        // windowed scan runs under every scheme too.
        check_posted("baseline", scheme, BaselineList::<PostedEntry>::new, seed);
        check_umq(
            "baseline",
            scheme,
            BaselineList::<UnexpectedEntry>::new,
            seed ^ 1,
        );
        check_posted("lla-2", scheme, Lla::<PostedEntry, 2>::new, seed + 2);
        check_umq("lla-3", scheme, Lla::<UnexpectedEntry, 3>::new, seed + 3);
        check_posted("lla-8", scheme, Lla::<PostedEntry, 8>::new, seed + 8);
        check_posted("lla-32", scheme, Lla::<PostedEntry, 32>::new, seed + 32);
        check_posted("lla-512", scheme, Lla::<PostedEntry, 512>::new, seed + 512);
        check_umq(
            "lla-768",
            scheme,
            Lla::<UnexpectedEntry, 768>::new,
            seed + 513,
        );
    }
    prefetch::set_scheme(orig);
}
