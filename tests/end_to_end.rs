//! Cross-crate integration: the full pipeline from match-list structures
//! through the cache simulator to the OSU harness behaves coherently.

use semiperm::cachesim::{ArchProfile, CostModel, LocalityConfig, MemSim};
use semiperm::core::dynengine::{DynEngine, EngineKind};
use semiperm::core::entry::{Envelope, RecvSpec};
use semiperm::osu::bw::{bandwidth_mibps, latency_us, osu_depths, OsuConfig};

/// The OSU bandwidth surface is monotone in the ways the paper relies on:
/// more depth never helps, larger messages never reduce bandwidth.
#[test]
fn bandwidth_surface_is_monotone() {
    let cfg = OsuConfig::sandy_bridge(LocalityConfig::lla(8));
    let mut last = f64::INFINITY;
    for depth in osu_depths() {
        let bw = bandwidth_mibps(&cfg, 1, depth);
        assert!(
            bw <= last * 1.0001,
            "bandwidth must not rise with depth ({depth})"
        );
        last = bw;
    }
    let mut last = 0.0;
    for size in [1u64, 64, 4096, 1 << 16, 1 << 20] {
        let bw = bandwidth_mibps(&cfg, size, 64);
        assert!(bw >= last, "bandwidth must rise with message size ({size})");
        last = bw;
    }
}

/// Every locality configuration the paper sweeps runs end to end on both
/// testbeds and produces finite, positive numbers.
#[test]
fn all_paper_configurations_run() {
    let configs = [
        LocalityConfig::baseline(),
        LocalityConfig::hc(),
        LocalityConfig::lla(2),
        LocalityConfig::lla(4),
        LocalityConfig::lla(8),
        LocalityConfig::lla(16),
        LocalityConfig::lla(32),
        LocalityConfig::lla(512),
        LocalityConfig::hc_lla(2),
    ];
    for mk in [
        OsuConfig::sandy_bridge as fn(_) -> _,
        OsuConfig::broadwell as fn(_) -> _,
    ] {
        for &loc in &configs {
            let bw = bandwidth_mibps(&mk(loc), 64, 128);
            assert!(bw.is_finite() && bw > 0.0, "{}", loc.label());
            let lat = latency_us(&mk(loc), 64, 128);
            assert!(lat.is_finite() && lat > 0.0, "{}", loc.label());
        }
    }
}

/// The cost model (used by the app proxies) and a hand-driven engine over
/// `MemSim` (used by the OSU harness) agree on the cold search cost.
#[test]
fn cost_model_matches_direct_simulation() {
    let arch = ArchProfile::sandy_bridge();
    let depth = 300u32;
    let modelled = CostModel::new(arch, LocalityConfig::lla(8)).cold_search_ns(depth);

    // Reconstruct the same protocol by hand.
    let mut eng = DynEngine::new(EngineKind::Lla { arity: 8 });
    for i in 0..depth {
        eng.post_recv(RecvSpec::new(0, i as i32, 0), i as u64);
    }
    let mut mem = MemSim::new(arch);
    mem.flush();
    mem.advance(1.0);
    let t0 = mem.time_ns();
    eng.arrival_sink(Envelope::new(0, (depth - 1) as i32, 0), 1, &mut mem);
    let direct = mem.time_ns() - t0;

    let ratio = modelled / direct;
    assert!(
        (0.8..1.25).contains(&ratio),
        "model {modelled:.0}ns vs direct {direct:.0}ns"
    );
}

/// Locality ordering holds across the whole stack on Sandy Bridge at the
/// paper's headline operating point (1 B messages, deep queues):
/// baseline < LLA-2 < LLA-8, and HC+LLA ≥ LLA at mid depths.
#[test]
fn headline_ordering_end_to_end() {
    let bw = |loc, depth| bandwidth_mibps(&OsuConfig::sandy_bridge(loc), 1, depth);
    let base = bw(LocalityConfig::baseline(), 1024);
    let lla2 = bw(LocalityConfig::lla(2), 1024);
    let lla8 = bw(LocalityConfig::lla(8), 1024);
    assert!(
        base < lla2 && lla2 < lla8,
        "base {base:.4} lla2 {lla2:.4} lla8 {lla8:.4}"
    );

    let lla_mid = bw(LocalityConfig::lla(2), 128);
    let both_mid = bw(LocalityConfig::hc_lla(2), 128);
    assert!(
        both_mid >= lla_mid * 0.98,
        "HC+LLA {both_mid:.4} vs LLA {lla_mid:.4}"
    );
}

/// The paper's conclusion quantifies "2X-5X speedups for common message
/// sizes" in matching performance; check the pure matching-cost ratio.
#[test]
fn matching_speedup_in_conclusion_band() {
    let arch = ArchProfile::sandy_bridge();
    for depth in [512, 1024, 4096] {
        let base = CostModel::new(arch, LocalityConfig::baseline()).cold_search_ns(depth);
        let best = CostModel::new(arch, LocalityConfig::lla(8)).cold_search_ns(depth);
        let speedup = base / best;
        assert!(
            (2.0..16.0).contains(&speedup),
            "depth {depth}: matching speedup {speedup:.2}"
        );
    }
}
