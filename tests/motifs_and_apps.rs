//! Integration: motifs and app proxies at reduced scale — message
//! conservation, structure-independence of queue behaviour, and the
//! paper's qualitative orderings.

use semiperm::cachesim::LocalityConfig;
use semiperm::core::dynengine::EngineKind;
use semiperm::miniapps::fds::{run_nehalem, speedup_nehalem_with, FdsParams};
use semiperm::motifs::decomp::{analyze, Decomp, Stencil};
use semiperm::motifs::{amr, halo3d, sweep3d};
use semiperm::mpisim::{SimWorld, WorldConfig};

/// Queue-length *behaviour* must not depend on the queue *structure*: the
/// same motif traced over baseline and LLA engines yields identical
/// histograms (the paper's Figure 1 is structure-independent data).
#[test]
fn queue_lengths_are_structure_independent() {
    let run_with = |engine| {
        let mut world = SimWorld::new(WorldConfig {
            engine,
            ..WorldConfig::untimed(64, 5)
        });
        // Deterministic mixed traffic.
        for iter in 0..3 {
            for r in 0..64u32 {
                for k in 0..4 {
                    world.post_recv(r, ((r + k + iter) % 64) as i32, k as i32, 0);
                }
            }
            for r in (0..64u32).rev() {
                for k in 0..4 {
                    world.send(r, (r + k + iter) % 64, k as i32, 0, 64);
                }
            }
            world.barrier();
        }
        let t = world.trace().expect("traced").clone();
        (
            t.posted.buckets().collect::<Vec<_>>(),
            t.unexpected.buckets().collect::<Vec<_>>(),
        )
    };
    let a = run_with(EngineKind::Baseline);
    let b = run_with(EngineKind::Lla { arity: 8 });
    let c = run_with(EngineKind::HashBins { bins: 16 });
    assert_eq!(a, b);
    assert_eq!(a, c);
}

/// Motif message conservation: every send is eventually matched, so the
/// posted and unexpected queues both drain to zero.
#[test]
fn motifs_conserve_messages() {
    let t = halo3d::run(halo3d::Halo3dParams {
        grid: [6, 6, 6],
        iterations: 2,
        ..halo3d::Halo3dParams::small()
    });
    // Additions equal removals per queue ⇒ sample count is even and the
    // zero bucket is populated at drain points.
    assert!(t.posted.count_for(0) > 0);

    let t = sweep3d::run(sweep3d::Sweep3dParams {
        grid: [8, 4],
        ..sweep3d::Sweep3dParams::small()
    });
    assert!(t.posted.count_for(0) > 0);

    let t = amr::run(amr::AmrParams {
        ranks: 128,
        iterations: 2,
        ..amr::AmrParams::small()
    });
    assert!(t.posted.count_for(0) > 0);
}

/// The three Figure 1 motifs have the paper's comparative shapes: AMR's
/// tail is the longest (mid-400s), Sweep3D's reaches ~100, Halo3D's stays
/// in the tens.
#[test]
fn figure1_comparative_shapes() {
    // AMR needs enough ranks for the power-law tail to be sampled.
    let amr_t = amr::run(amr::AmrParams {
        ranks: 2048,
        iterations: 3,
        ..amr::AmrParams::small()
    });
    let sweep_t = sweep3d::run(sweep3d::Sweep3dParams::small());
    let halo_t = halo3d::run(halo3d::Halo3dParams {
        grid: [6, 6, 6],
        ..halo3d::Halo3dParams::small()
    });
    let amr_max = amr_t.posted.max_bucket_hi();
    let sweep_max = sweep_t.posted.max_bucket_hi();
    let halo_max = halo_t.posted.max_bucket_hi();
    assert!(amr_max > 200, "AMR tail {amr_max} reaches the hundreds");
    assert!(
        (50..=150).contains(&sweep_max),
        "Sweep3D tail {sweep_max} is around one hundred"
    );
    assert!(
        halo_max <= 110,
        "Halo3D tail {halo_max} stays within neighbours*vars"
    );
    assert!(amr_max > sweep_max, "AMR {amr_max} > Sweep3D {sweep_max}");
    assert!(amr_max > halo_max, "AMR {amr_max} > Halo3D {halo_max}");
}

/// Table 1's depth/length ratio is stable across seeds (the paper reports
/// averages of 10 trials for the same reason).
#[test]
fn decomp_depth_stable_across_seeds() {
    let d = Decomp {
        dims: [16, 16, 1],
        stencil: Stencil::S9,
    };
    let a = analyze(d, 10, 1).mean_search_depth;
    let b = analyze(d, 10, 2).mean_search_depth;
    let rel = (a - b).abs() / a;
    assert!(
        rel < 0.05,
        "seed variation {rel:.3} too high ({a:.1} vs {b:.1})"
    );
}

/// FDS proxy consistency: all locality configurations process identical
/// message volumes (speedups come from locality, not from doing less work).
#[test]
fn fds_configs_do_identical_work() {
    let p = FdsParams::small(512);
    let base = run_nehalem(p, LocalityConfig::baseline());
    let lla = run_nehalem(p, LocalityConfig::lla(2));
    assert_eq!(
        base.mean_depth, lla.mean_depth,
        "same arrivals, same depths"
    );
    assert!(lla.seconds <= base.seconds);

    // And the headline crossover: LLA's advantage grows with scale.
    let s_small = speedup_nehalem_with(FdsParams::small(256), LocalityConfig::lla(2));
    let s_large = speedup_nehalem_with(FdsParams::small(2048), LocalityConfig::lla(2));
    assert!(s_large > s_small);
}
