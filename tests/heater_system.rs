//! System-level tests of the real hot-caching heater: concurrent engine
//! mutation, churn, pause/resume phases, and failure-injection on the
//! registration lifecycle.

use std::sync::Arc;
use std::time::Duration;

use semiperm::core::engine::MatchEngine;
use semiperm::core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry};
use semiperm::core::heater::{CoreBinding, HeatBuffer, Heater, HeaterConfig};
use semiperm::core::list::Lla;

fn heater() -> Heater {
    Heater::spawn(HeaterConfig {
        period: Duration::from_micros(20),
        binding: CoreBinding::SharedLlc,
    })
}

/// The paper's integration: a live matching engine whose element pools are
/// being heated while the protocol runs full speed.
#[test]
fn engine_runs_at_full_speed_under_heating() {
    let h = heater();
    let mut engine: MatchEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> =
        MatchEngine::new(Lla::new(), Lla::new());

    // Grow the queues so the pools have chunks, then register them.
    for i in 0..5000 {
        engine.post_recv(RecvSpec::new(1, i, 0), i as u64);
    }
    for i in 0..2000 {
        engine.arrival(Envelope::new(2, i, 0), i as u64); // unexpected
    }
    let prq_regions = engine.prq().real_regions();
    let umq_regions = engine.umq().real_regions();
    let ids: Vec<_> = prq_regions
        .iter()
        .chain(umq_regions.iter())
        // SAFETY: pools outlive the deregistration below.
        .map(|(p, l)| unsafe { h.register_raw(*p, *l) })
        .collect();
    h.wait_passes(5);

    // Full protocol churn while heated.
    for i in 0..5000 {
        let out = engine.arrival(Envelope::new(1, i, 0), 10_000 + i as u64);
        assert!(matches!(
            out,
            semiperm::core::engine::ArrivalOutcome::MatchedPosted { .. }
        ));
    }
    for i in 0..2000 {
        let out = engine.post_recv(RecvSpec::new(2, i, 0), 20_000 + i as u64);
        assert!(matches!(
            out,
            semiperm::core::engine::RecvOutcome::MatchedUnexpected { .. }
        ));
    }
    assert_eq!(engine.prq_len(), 0);
    assert_eq!(engine.umq_len(), 0);
    assert!(h.stats().lines_touched > 0);

    for id in ids {
        h.deregister(id);
    }
    drop(engine);
    h.shutdown();
}

/// Registration churn under load: register/deregister cycles from the main
/// thread while the heater runs never deadlock and always leave a
/// consistent region count.
#[test]
fn registration_churn_is_safe() {
    let h = heater();
    let buffers: Vec<_> = (0..8).map(|_| HeatBuffer::new(16 * 1024)).collect();
    for round in 0..20 {
        let ids: Vec<_> = buffers
            .iter()
            .map(|b| h.register_buffer(Arc::clone(b)))
            .collect();
        assert_eq!(h.stats().active_regions, 8, "round {round}");
        if round % 3 == 0 {
            h.wait_passes(2);
        }
        for id in ids {
            h.deregister(id);
        }
        assert_eq!(h.stats().active_regions, 0, "round {round}");
    }
    h.shutdown();
}

/// The BSP collaboration pattern: pause during compute, resume before the
/// communication phase, repeated. Touch counts only advance while active.
#[test]
fn phase_collaboration_pattern() {
    let h = heater();
    let buf = HeatBuffer::new(64 * 1024);
    h.register_buffer(Arc::clone(&buf));
    for _phase in 0..5 {
        // Communication phase: heater active.
        h.resume();
        h.wait_passes(3);
        let active_touches = h.stats().lines_touched;
        // Compute phase: heater paused.
        h.pause();
        h.wait_passes(1); // let an in-flight pass finish ticking
        let frozen = h.stats().lines_touched;
        h.wait_passes(3);
        assert_eq!(h.stats().lines_touched, frozen);
        assert!(frozen >= active_touches);
    }
    h.shutdown();
}

/// Period adjustment (the paper's locality-granularity knob) takes effect
/// without restarting the heater.
#[test]
fn period_is_adjustable_live() {
    let h = heater();
    let buf = HeatBuffer::new(4096);
    h.register_buffer(buf);
    h.wait_passes(2);
    // Slow way down; the heater must still respond to shutdown quickly
    // (the period only gates the next sleep, not control flags).
    h.set_period(Duration::from_millis(2));
    h.wait_passes(1);
    h.set_period(Duration::from_micros(10));
    h.wait_passes(5);
    h.shutdown();
}

/// Two heaters coexist (e.g. one per socket), each with its own regions.
#[test]
fn multiple_heaters_coexist() {
    let h1 = heater();
    let h2 = heater();
    let b1 = HeatBuffer::new(8192);
    let b2 = HeatBuffer::new(8192);
    h1.register_buffer(Arc::clone(&b1));
    h2.register_buffer(Arc::clone(&b2));
    h1.wait_passes(3);
    h2.wait_passes(3);
    assert!(h1.stats().lines_touched > 0);
    assert!(h2.stats().lines_touched > 0);
    h1.shutdown();
    h2.shutdown();
}
