//! Multithreaded matching: the paper's §2.3 future — many threads driving
//! one match engine — on real OS threads.
//!
//! A receiving "process" decomposed into posting threads and a proxy sender
//! process decomposed into sending threads race on a [`SharedEngine`];
//! afterwards we report the observed search depths (they grow with the
//! nondeterminism, as Table 1 predicts) and the engine-lock contention.
//!
//! Run with: `cargo run --release --example threaded_matching`

use semiperm::core::concurrent::SharedEngine;
use semiperm::core::engine::MatchEngine;
use semiperm::core::entry::{Envelope, PostedEntry, RecvSpec, UnexpectedEntry};
use semiperm::core::list::Lla;
use semiperm::motifs::decomp::{analyze, Decomp, Stencil};

const POSTERS: usize = 8;
const SENDERS: usize = 8;
const PER_THREAD: i32 = 2000;

fn main() {
    let eng: SharedEngine<Lla<PostedEntry, 2>, Lla<UnexpectedEntry, 3>> =
        SharedEngine::new(MatchEngine::new(Lla::new(), Lla::new()));

    std::thread::scope(|s| {
        // Posting threads: each owns a disjoint tag range.
        for t in 0..POSTERS {
            let eng = &eng;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let tag = (t as i32) * PER_THREAD + i;
                    eng.post_recv(RecvSpec::new(1, tag, 0), tag as u64);
                }
            });
        }
        // Proxy-sender threads race the posters and issue their sends in
        // the opposite order (unsynchronized threads give "more random-like
        // distributions of match entries", §4.5) — so matches land deep in
        // the list.
        for t in 0..SENDERS {
            let eng = &eng;
            s.spawn(move || {
                for i in (0..PER_THREAD).rev() {
                    let tag = (t as i32) * PER_THREAD + i;
                    let _ = eng.arrival(Envelope::new(1, tag, 0), tag as u64);
                }
            });
        }
    });

    let (prq, umq) = eng.queue_lens();
    println!("after the storm: {prq} receives still posted, {umq} unexpected buffered");
    assert_eq!((prq, umq), (0, 0), "every tag is posted once and sent once");

    let stats = eng.stats();
    println!(
        "matched {} on the fast path, {} via the unexpected queue",
        stats.prq_hits, stats.umq_hits
    );
    println!(
        "mean PRQ search depth {:.1} (max {}), mean UMQ search depth {:.1}",
        stats.prq_search.mean(),
        stats.prq_search.max,
        stats.umq_search.mean()
    );
    let locks = eng.lock_stats();
    println!(
        "engine lock: {} acquisitions, {:.1}% contended",
        locks.acquisitions,
        locks.contention_ratio() * 100.0
    );

    // Compare with Table 1's model for a comparable decomposition.
    let d = Decomp {
        dims: [32, 32, 1],
        stencil: Stencil::S9,
    };
    let r = analyze(d, 10, 1);
    println!(
        "\nTable 1 reference (32x32 9pt): length {} mean depth {:.1} — \
         unsynchronized threads make deep searches the norm",
        r.length, r.mean_search_depth
    );
}
