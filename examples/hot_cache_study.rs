//! Hot caching end to end: the real heater thread on this machine, plus
//! the simulated cross-architecture study.
//!
//! Part 1 drives the *real* [`semiperm::core::heater::Heater`]: registers a
//! live LLA element pool, lets the heater touch it while the match engine
//! keeps mutating the list, demonstrates pause/resume (the paper's
//! compute-phase collaboration strategy) and the safe deregistration
//! handshake.
//!
//! Part 2 asks the cache simulator the paper's architectural question: on
//! which machines does semi-permanent cache occupancy pay?
//!
//! Run with: `cargo run --release --example hot_cache_study`

use std::time::Duration;

use semiperm::cachesim::{ArchProfile, CostModel, LocalityConfig};
use semiperm::core::entry::{Envelope, PostedEntry, RecvSpec};
use semiperm::core::heater::{CoreBinding, Heater, HeaterConfig};
use semiperm::core::list::{Lla, MatchList};
use semiperm::core::NullSink;

fn main() {
    // ---- Part 1: the real heater ---------------------------------------
    println!("spawning heater (50 us period) ...");
    let heater = Heater::spawn(HeaterConfig {
        period: Duration::from_micros(50),
        binding: CoreBinding::SharedLlc,
    });

    let mut list: Lla<PostedEntry, 2> = Lla::new();
    let mut sink = NullSink;
    for i in 0..2048 {
        list.append(
            PostedEntry::from_spec(RecvSpec::new(1, i, 0), i as u64),
            &mut sink,
        );
    }
    // Register the element pool's chunks — stable storage, so the raw
    // registration contract is easy to uphold.
    let ids: Vec<_> = list
        .real_regions()
        .iter()
        // SAFETY: the pool chunks live until `deregister` below returns
        // (the list outlives the heater session).
        .map(|(ptr, len)| unsafe { heater.register_raw(*ptr, *len) })
        .collect();

    heater.wait_passes(10);
    println!("after 10 passes: {:?}", heater.stats());

    // The list keeps working while heated.
    for i in 0..1024 {
        let r = list.search_remove(&Envelope::new(1, i, 0), &mut sink);
        assert!(r.found.is_some());
    }
    println!(
        "matched 1024 receives while the heater ran; list now {} long",
        list.len()
    );

    // Compute phase: pause the heater so it does not steal cycles or cache.
    heater.pause();
    heater.wait_passes(2);
    let frozen = heater.stats().lines_touched;
    heater.wait_passes(3);
    assert_eq!(
        heater.stats().lines_touched,
        frozen,
        "paused heater is idle"
    );
    println!("paused through a compute phase ({frozen} lines touched so far)");
    heater.resume();
    heater.wait_passes(2);

    // Safe teardown: deregister (handshakes with the in-flight pass), then
    // the memory may go away.
    for id in ids {
        heater.deregister(id);
    }
    drop(list);
    heater.shutdown();
    println!("deregistered and shut down cleanly\n");

    // ---- Part 2: where does hot caching pay? ---------------------------
    println!("cold-start search cost at depth 512, heater off vs on:");
    println!(
        "  {:<12} {:>10} {:>10} {:>8}",
        "arch", "cold (ns)", "hot (ns)", "gain"
    );
    for arch in [
        ArchProfile::nehalem(),
        ArchProfile::sandy_bridge(),
        ArchProfile::broadwell(),
    ] {
        let cold = CostModel::new(arch, LocalityConfig::baseline()).cold_search_ns(512);
        let hot = CostModel::new(arch, LocalityConfig::hc()).cold_search_ns(512);
        println!(
            "  {:<12} {:>10.0} {:>10.0} {:>7.2}x",
            arch.name,
            cold,
            hot,
            cold / hot
        );
    }
    println!(
        "\nThe gain tracks each machine's DRAM-to-L3 latency gap — Sandy \
         Bridge's core-clocked L3 profits most, Broadwell's decoupled L3 \
         least (the paper's §4.3 contrast)."
    );
}
