//! Demo of the differential conformance harness (`spc-conformance`).
//!
//! Replays a seeded randomized op stream through every engine
//! configuration against the Vec-backed oracle, then injects a
//! FIFO-overtaking bug and shows the shrunk, paste-able repro the
//! harness produces for a real failure.
//!
//! ```bash
//! cargo run --release --example conformance_demo [seed] [n_ops]
//! ```

use spc_conformance::{
    diff_dyn_engine, diff_posted, engine_ops, posted_ops, render_ops, shrink_ops, DepthMode,
    FifoViolator,
};
use spc_core::dynengine::EngineKind;
use spc_core::entry::PostedEntry;
use spc_core::list::BaselineList;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| parse_u64(&s, "seed"))
        .unwrap_or(0x5EED_0DE0);
    let n_ops: usize = args
        .next()
        .map(|s| parse_u64(&s, "n_ops") as usize)
        .unwrap_or(10_000);

    println!("conformance demo: seed={seed:#x}, {n_ops} ops per engine\n");

    let kinds = [
        EngineKind::Baseline,
        EngineKind::Lla { arity: 2 },
        EngineKind::Lla { arity: 8 },
        EngineKind::Lla { arity: 512 },
        EngineKind::SourceBins { comm_size: 16 },
        EngineKind::HashBins { bins: 4 },
        EngineKind::RankTrie { capacity: 16 },
    ];
    let ops = engine_ops(seed, n_ops);
    for kind in kinds {
        let mode = match kind {
            EngineKind::Baseline | EngineKind::Lla { .. } => DepthMode::Exact,
            _ => DepthMode::Bounded,
        };
        match diff_dyn_engine(kind, mode, &ops) {
            Ok(()) => println!(
                "  {:<24} {n_ops} ops vs oracle: OK ({mode:?})",
                kind.label()
            ),
            Err(d) => {
                println!("  {:<24} DIVERGED: {d}", kind.label());
                std::process::exit(1);
            }
        }
    }

    println!("\ninjecting a FIFO-overtaking bug into BaselineList...");
    let ops = posted_ops(seed ^ 0xF1F0, n_ops);
    let fails = |s: &[_]| {
        diff_posted(
            &mut FifoViolator::new(BaselineList::<PostedEntry>::new()),
            DepthMode::Exact,
            s,
        )
        .is_err()
    };
    match diff_posted(
        &mut FifoViolator::new(BaselineList::<PostedEntry>::new()),
        DepthMode::Exact,
        &ops,
    ) {
        Ok(()) => {
            println!("  adversary was NOT caught — harness is insensitive!");
            std::process::exit(1);
        }
        Err(d) => {
            println!("  caught at step {} ({})", d.step, d.detail);
            let min = shrink_ops(&ops, fails);
            println!(
                "  minimized from {} ops to {} — paste-able repro:\n",
                ops.len(),
                min.len()
            );
            println!("{}", render_ops("PostedOp", &min));
        }
    }
}

fn parse_u64(s: &str, what: &str) -> u64 {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("error: {what} must be an integer (got {s:?})");
        std::process::exit(2);
    })
}
