//! Quickstart: the MPI matching engine in five minutes.
//!
//! Builds a matching engine with the paper's linked-list-of-arrays queues,
//! runs the two protocol paths (expected and unexpected messages), then
//! shows what the locality instrumentation sees.
//!
//! Run with: `cargo run --release --example quickstart`

use semiperm::core::engine::{ArrivalOutcome, MatchEngine, RecvOutcome};
use semiperm::core::entry::{Envelope, RecvSpec, ANY_SOURCE};
use semiperm::core::list::{lla, MatchList};
use semiperm::core::{CountingSink, NullSink};

fn main() {
    // The paper's cache-line configuration: 2 posted entries per 64-byte
    // node, 3 unexpected entries per node (Figure 2).
    let mut engine = MatchEngine::new(lla::posted_cacheline(), lla::unexpected_cacheline());

    // --- The expected-message path -------------------------------------
    // A receive is posted first; the message finds it on arrival.
    let out = engine.post_recv(RecvSpec::new(/*source*/ 3, /*tag*/ 7, /*comm*/ 0), 100);
    assert!(matches!(out, RecvOutcome::Posted));
    match engine.arrival(Envelope::new(3, 7, 0), 9001) {
        ArrivalOutcome::MatchedPosted { request, depth } => {
            println!("expected message matched request {request} at depth {depth}");
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    // --- The unexpected-message path ------------------------------------
    // The message arrives before its receive and waits on the UMQ.
    assert!(matches!(
        engine.arrival(Envelope::new(5, 1, 0), 9002),
        ArrivalOutcome::Queued
    ));
    match engine.post_recv(RecvSpec::new(ANY_SOURCE, 1, 0), 101) {
        RecvOutcome::MatchedUnexpected { payload, depth } => {
            println!("wildcard receive drained unexpected payload {payload} at depth {depth}");
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    // --- Locality instrumentation ---------------------------------------
    // Post 100 receives from many sources, then count the cache lines one
    // deep search actually touches. This is the measurement the whole
    // paper is about.
    for i in 0..100 {
        engine.post_recv(RecvSpec::new(i % 16, i, 0), 200 + i as u64);
    }
    let mut sink = CountingSink::new();
    let probe = Envelope::new(99 % 16, 99, 0); // matches the last entry
    let out = engine.prq_mut().search_remove(&probe, &mut sink);
    println!(
        "searched {} entries, touching {} distinct cache lines ({} reads)",
        out.depth,
        sink.distinct_lines(),
        sink.reads
    );

    // Compare with the baseline structure (one heap node per entry).
    let mut baseline = semiperm::core::list::BaselineList::new();
    let mut null = NullSink;
    for i in 0..100 {
        baseline.append(
            semiperm::core::entry::PostedEntry::from_spec(RecvSpec::new(i % 16, i, 0), i as u64),
            &mut null,
        );
    }
    let mut sink = CountingSink::new();
    baseline.search_remove(&probe, &mut sink);
    println!(
        "the baseline list touches {} distinct lines for the same search",
        sink.distinct_lines()
    );
    println!("(packing ~2.7 entries per line is the paper's spacial-locality lever)");
}
