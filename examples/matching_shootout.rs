//! Matching-structure shootout: every implementation in the library on one
//! adversarial workload, comparing search depths, distinct cache lines
//! touched, and memory footprints.
//!
//! This is the "tools to assess existing schemes" use the paper proposes:
//! the structures are behaviourally interchangeable (property-tested), so
//! the differences below are pure locality and algorithmics.
//!
//! Run with: `cargo run --release --example matching_shootout`

use semiperm::core::entry::{Envelope, PostedEntry, RecvSpec};
use semiperm::core::list::{BaselineList, HashBins, Lla, MatchList, RankTrie, SourceBins};
use semiperm::core::CountingSink;

const RANKS: i32 = 64;
const ENTRIES: i32 = 1024;

fn drive<L: MatchList<PostedEntry>>(name: &str, mut list: L) {
    let mut sink = CountingSink::new();
    // Post 1024 receives round-robin across 64 sources, a few wildcards.
    for i in 0..ENTRIES {
        let spec = if i % 97 == 0 {
            RecvSpec::new(semiperm::core::ANY_SOURCE, i, 0)
        } else {
            RecvSpec::new(i % RANKS, i, 0)
        };
        list.append(PostedEntry::from_spec(spec, i as u64), &mut sink);
    }
    let fp = list.footprint();
    sink.reset();

    // Adversarial arrivals: reverse order, so naive lists search deep.
    let mut total_depth = 0u64;
    for i in (0..ENTRIES).rev() {
        let r = list.search_remove(&Envelope::new(i % RANKS, i, 0), &mut sink);
        assert!(r.found.is_some(), "{name}: entry {i} must match");
        total_depth += r.depth as u64;
    }
    println!(
        "  {:<18} mean depth {:>7.1}   lines touched {:>7}   footprint {:>8} B in {:>4} allocs",
        name,
        total_depth as f64 / ENTRIES as f64,
        sink.distinct_lines(),
        fp.bytes,
        fp.allocations
    );
}

fn main() {
    println!(
        "{} entries from {} sources, matched tail-first (depth = entries inspected):",
        ENTRIES, RANKS
    );
    drive("baseline", BaselineList::new());
    drive("LLA-2", Lla::<PostedEntry, 2>::new());
    drive("LLA-8", Lla::<PostedEntry, 8>::new());
    drive("LLA-512 (large)", Lla::<PostedEntry, 512>::new());
    drive("source-bins", SourceBins::new(RANKS as usize));
    drive("hash-bins(256)", HashBins::new());
    drive("rank-trie", RankTrie::new(RANKS as usize));

    println!(
        "\nreading the table: LLA keeps the baseline's O(n) depths but \
         packs entries into ~n/2.7 lines (the paper's spacial-locality \
         gain); bins/hash/trie cut the *depth* instead — the related-work \
         approaches the paper says are \"actually ... reducing cache misses \
         by limiting list iteration\". The bins' footprint shows the \
         O(ranks) memory they pay for it."
    );
}
