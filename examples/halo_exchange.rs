//! Halo exchange on the rank simulator: the workload from the paper's
//! motivation study (§2.3, Figure 1c), at laptop scale.
//!
//! Runs a 3-D halo exchange over 512 simulated ranks twice — once with
//! baseline queues, once with linked-list-of-arrays queues — and compares
//! simulated execution times and queue statistics.
//!
//! Run with: `cargo run --release --example halo_exchange`

use semiperm::cachesim::{ArchProfile, LocalityConfig};
use semiperm::core::dynengine::EngineKind;
use semiperm::motifs::halo3d::{run, Halo3dParams, HaloStencil};
use semiperm::mpisim::{SimWorld, WorldConfig};
use semiperm::simnet::NetProfile;

fn timed_exchange(engine: EngineKind, locality: LocalityConfig) -> f64 {
    // An 8x8x8 grid with 6-neighbour exchange and pre-padded queues (a
    // finer-grained-messaging future, per the paper's motivation).
    let mut world = SimWorld::new(WorldConfig::timed(
        512,
        engine,
        ArchProfile::broadwell(),
        locality,
        NetProfile::omnipath(),
    ));
    world.pad_all(256);
    let dims = [8i64, 8, 8];
    let rank_of = |x: i64, y: i64, z: i64| -> Option<u32> {
        if x < 0 || y < 0 || z < 0 || x >= dims[0] || y >= dims[1] || z >= dims[2] {
            None
        } else {
            Some(((z * dims[1] + y) * dims[0] + x) as u32)
        }
    };
    for _iter in 0..4 {
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    let me = rank_of(x, y, z).expect("in grid");
                    for (d, (dx, dy, dz)) in [
                        (1, 0, 0),
                        (-1, 0, 0),
                        (0, 1, 0),
                        (0, -1, 0),
                        (0, 0, 1),
                        (0, 0, -1),
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        if let Some(src) = rank_of(x - dx, y - dy, z - dz) {
                            world.post_recv(me, src as i32, d as i32, 0);
                        }
                    }
                }
            }
        }
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    let me = rank_of(x, y, z).expect("in grid");
                    for (d, (dx, dy, dz)) in [
                        (1, 0, 0),
                        (-1, 0, 0),
                        (0, 1, 0),
                        (0, -1, 0),
                        (0, 0, 1),
                        (0, 0, -1),
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        if let Some(dst) = rank_of(x + dx, y + dy, z + dz) {
                            world.send(me, dst, d as i32, 0, 8192);
                        }
                    }
                }
            }
        }
        world.compute_all(1_000_000.0);
        world.barrier();
    }
    let stats = world.stats();
    println!(
        "  {:>9}: {:>8.3} ms simulated, {} messages, mean PRQ search depth {:.1}",
        locality.label(),
        stats.elapsed_ns / 1e6,
        stats.msgs_sent,
        stats.engine.prq_search.mean()
    );
    stats.elapsed_ns
}

fn main() {
    println!("halo exchange, 512 ranks, PRQ padded to 256 entries:");
    let base = timed_exchange(EngineKind::Baseline, LocalityConfig::baseline());
    let lla = timed_exchange(EngineKind::Lla { arity: 8 }, LocalityConfig::lla(8));
    println!("  speedup from spacial locality: {:.2}x", base / lla);

    println!("\nqueue-length trace of the untimed motif (Figure 1c shape):");
    let trace = run(Halo3dParams {
        grid: [8, 8, 8],
        stencil: HaloStencil::Faces6,
        iterations: 2,
        ..Halo3dParams::small()
    });
    for (lo, hi, c) in trace.posted.buckets() {
        if c > 0 {
            println!("  PRQ length {lo:>3}-{hi:<3}: {c} samples");
        }
    }
}
