//! # semiperm — umbrella crate
//!
//! Reproduction of *"The Case for Semi-Permanent Cache Occupancy:
//! Understanding the Impact of Data Locality on Network Processing"*
//! (Dosanjh et al., ICPP 2018).
//!
//! This crate re-exports the whole workspace so downstream users (and the
//! `examples/` and `tests/` directories) can depend on a single package:
//!
//! * [`core`] — the matching engine and list structures (the paper's
//!   contribution);
//! * [`cachesim`] — the cache-hierarchy simulator with architecture
//!   profiles;
//! * [`simnet`] — the LogGP network timing model;
//! * [`mpisim`] — the discrete-event MPI rank simulator;
//! * [`motifs`] — SST-style communication motifs and the
//!   thread-decomposition benchmark;
//! * [`miniapps`] — the AMG2013 / MiniFE / FDS proxy applications;
//! * [`osu`] — the modified OSU microbenchmarks.
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! experiment inventory.

#![warn(missing_docs)]

pub use spc_cachesim as cachesim;
pub use spc_core as core;
pub use spc_miniapps as miniapps;
pub use spc_motifs as motifs;
pub use spc_mpisim as mpisim;
pub use spc_osu as osu;
pub use spc_simnet as simnet;
